(* Tests for the telemetry subsystem: metric registry semantics (label
   canonicalization, handle sharing, kind clashes), snapshot determinism,
   the three exporters (table / Prometheus / JSONL with round-trip), the
   zero-cost null registry, and the span/event tracer. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)
let checks = Alcotest.check Alcotest.string

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- Registry --------------------------------------------------------------- *)

let test_counter_gauge_basics () =
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "requests_total" in
  Telemetry.Registry.Counter.incr c;
  Telemetry.Registry.Counter.incr c ~by:41;
  checki "counter accumulates" 42 (Telemetry.Registry.Counter.value c);
  checkb "negative increment raises" true
    (raises_invalid (fun () -> Telemetry.Registry.Counter.incr c ~by:(-1)));
  let g = Telemetry.Registry.gauge reg "depth" in
  Telemetry.Registry.Gauge.set g 7.;
  Telemetry.Registry.Gauge.add g 0.5;
  checkf 1e-9 "gauge set+add" 7.5 (Telemetry.Registry.Gauge.value g)

let test_label_canonicalization () =
  let reg = Telemetry.Registry.create () in
  (* Label order is irrelevant to metric identity: both registrations
     must return the same underlying counter. *)
  let a =
    Telemetry.Registry.counter reg "ops_total"
      ~labels:[ ("op", "read"); ("chip", "0") ]
  in
  let b =
    Telemetry.Registry.counter reg "ops_total"
      ~labels:[ ("chip", "0"); ("op", "read") ]
  in
  Telemetry.Registry.Counter.incr a ~by:3;
  checki "same handle regardless of label order" 3
    (Telemetry.Registry.Counter.value b);
  (* Different label values are distinct series. *)
  let other =
    Telemetry.Registry.counter reg "ops_total"
      ~labels:[ ("chip", "0"); ("op", "write") ]
  in
  checki "distinct series start at zero" 0
    (Telemetry.Registry.Counter.value other);
  checkb "duplicate label keys raise" true
    (raises_invalid (fun () ->
         Telemetry.Registry.counter reg "dup"
           ~labels:[ ("k", "1"); ("k", "2") ]));
  (* Values are unrestricted (exporters escape); keys stay strict. *)
  let eq = Telemetry.Registry.counter reg "free" ~labels:[ ("k", "a=b") ] in
  Telemetry.Registry.Counter.incr eq;
  checki "label values may contain '='" 1
    (Telemetry.Registry.Counter.value eq);
  checkb "label keys must avoid '='" true
    (raises_invalid (fun () ->
         Telemetry.Registry.counter reg "bad" ~labels:[ ("a=b", "v") ]))

let test_labels_escaping () =
  let contains text needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  let open Telemetry.Registry in
  checks "structural chars escape in canonical form" "k=a\\=b\\,c\\\\d\\n-"
    (Labels.to_string (Labels.v [ ("k", "a=b,c\\d\n-") ]));
  (* Injectivity: label sets that would collide unescaped stay
     distinct. *)
  let a = Labels.to_string (Labels.v [ ("k", "a,b") ]) in
  let b = Labels.to_string (Labels.v [ ("k", "a"); ("k2", "") ]) in
  checkb "escaping keeps distinct label sets distinct" false (a = b);
  let reg = create () in
  let c =
    counter reg "quoted_total" ~labels:[ ("cell", "plan=\"kill@600\"\nx") ]
  in
  Counter.incr c ~by:7;
  let prom = Telemetry.Export.to_prometheus (snapshot reg) in
  checkb "prometheus escapes quotes in label values" true
    (contains prom "cell=\"plan=\\\"kill@600\\\"\\nx\"");
  (* JSONL round-trips the awkward value losslessly. *)
  let back = Telemetry.Export.of_jsonl (Telemetry.Export.to_jsonl (snapshot reg)) in
  match back with
  | [ s ] ->
      checks "jsonl round-trips quoted label value"
        "cell=plan\\=\"kill@600\"\\nx"
        (Labels.to_string s.labels)
  | _ -> Alcotest.fail "expected exactly one sample"

let test_kind_clash_raises () =
  let reg = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter reg "x_total");
  checkb "same name as gauge raises" true
    (raises_invalid (fun () -> Telemetry.Registry.gauge reg "x_total"));
  (* ... even under different labels of the same name. *)
  checkb "kind clash across labels raises" true
    (raises_invalid (fun () ->
         Telemetry.Registry.histogram reg "x_total" ~labels:[ ("l", "1") ]
           ~lo:0. ~hi:1.));
  (* Same name + labels + kind is idempotent, not an error. *)
  let again = Telemetry.Registry.counter reg "x_total" in
  Telemetry.Registry.Counter.incr again;
  checki "re-registration shares the handle" 1
    (Telemetry.Registry.Counter.value again)

let populate reg order =
  List.iter
    (fun i ->
      match i with
      | 0 ->
          Telemetry.Registry.Counter.incr ~by:5
            (Telemetry.Registry.counter reg "alpha_total" ~help:"a")
      | 1 ->
          Telemetry.Registry.Gauge.set
            (Telemetry.Registry.gauge reg "beta" ~help:"b")
            2.5
      | _ ->
          let h =
            Telemetry.Registry.histogram reg "gamma_us" ~help:"g" ~lo:0.
              ~hi:100. ~buckets:100
              ~labels:[ ("op", "read") ]
          in
          List.iter
            (Telemetry.Registry.Histogram.observe h)
            [ 10.; 20.; 30.; 40. ])
    order

let test_snapshot_determinism () =
  (* Snapshots are sorted by (name, labels): registration order must not
     leak into the output. *)
  let reg1 = Telemetry.Registry.create ()
  and reg2 = Telemetry.Registry.create () in
  populate reg1 [ 0; 1; 2 ];
  populate reg2 [ 2; 0; 1 ];
  let names reg =
    List.map
      (fun s ->
        (s.Telemetry.Registry.name,
         Telemetry.Registry.Labels.to_string s.Telemetry.Registry.labels))
      (Telemetry.Registry.snapshot reg)
  in
  Alcotest.(check (list (pair string string)))
    "identical sample order" (names reg1) (names reg2);
  Alcotest.(check (list (pair string string)))
    "sorted by name"
    [ ("alpha_total", ""); ("beta", ""); ("gamma_us", "op=read") ]
    (names reg1)

let test_null_registry_inert () =
  let c = Telemetry.Registry.counter Telemetry.Registry.null "n_total" in
  let g = Telemetry.Registry.gauge Telemetry.Registry.null "n" in
  let h =
    Telemetry.Registry.histogram Telemetry.Registry.null ~lo:0. ~hi:1. "n_us"
  in
  checkb "counter inactive" false (Telemetry.Registry.Counter.is_active c);
  checkb "gauge inactive" false (Telemetry.Registry.Gauge.is_active g);
  checkb "histogram inactive" false (Telemetry.Registry.Histogram.is_active h);
  Telemetry.Registry.Counter.incr c ~by:1000;
  Telemetry.Registry.Gauge.set g 9.;
  Telemetry.Registry.Histogram.observe h 0.5;
  checki "counter stays zero" 0 (Telemetry.Registry.Counter.value c);
  checkf 1e-9 "gauge stays zero" 0. (Telemetry.Registry.Gauge.value g);
  checki "histogram stays empty" 0 (Telemetry.Registry.Histogram.count h);
  checki "null snapshot is empty" 0
    (List.length (Telemetry.Registry.snapshot Telemetry.Registry.null))

(* --- Exporters --------------------------------------------------------------- *)

let contains_sub text needle =
  let n = String.length needle and m = String.length text in
  let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
  go 0

let sample_registry () =
  let reg = Telemetry.Registry.create () in
  populate reg [ 0; 1; 2 ];
  reg

let test_prometheus_format () =
  let text =
    Telemetry.Export.to_prometheus
      (Telemetry.Registry.snapshot (sample_registry ()))
  in
  List.iter
    (fun line -> checkb line true (contains_sub text line))
    [
      "# HELP alpha_total a";
      "# TYPE alpha_total counter";
      "alpha_total 5";
      "# TYPE beta gauge";
      "beta 2.5";
      "# TYPE gamma_us summary";
      "gamma_us{op=\"read\",quantile=\"0.5\"}";
      "gamma_us_count{op=\"read\"} 4";
      "gamma_us_sum{op=\"read\"} 100";
    ]

let test_jsonl_roundtrip () =
  let samples = Telemetry.Registry.snapshot (sample_registry ()) in
  let parsed = Telemetry.Export.of_jsonl (Telemetry.Export.to_jsonl samples) in
  checki "same sample count" (List.length samples) (List.length parsed);
  List.iter2
    (fun (a : Telemetry.Registry.sample) (b : Telemetry.Registry.sample) ->
      checks "name" a.name b.name;
      checks "labels"
        (Telemetry.Registry.Labels.to_string a.labels)
        (Telemetry.Registry.Labels.to_string b.labels);
      match (a.value, b.value) with
      | Counter x, Counter y -> checki "counter value" x y
      | Gauge x, Gauge y -> checkf 1e-12 "gauge value" x y
      | Histogram x, Histogram y ->
          checki "hist count" x.count y.count;
          checkf 1e-9 "hist mean" x.mean y.mean;
          checkf 1e-9 "hist min" x.min y.min;
          checkf 1e-9 "hist max" x.max y.max;
          checkf 1e-9 "hist p50" x.p50 y.p50;
          checkf 1e-9 "hist p90" x.p90 y.p90;
          checkf 1e-9 "hist p99" x.p99 y.p99
      | _ -> Alcotest.fail "value kind changed across round-trip")
    samples parsed

let test_jsonl_nonfinite () =
  (* An empty histogram has nan summary fields; they must survive export
     (as null) and come back as nan rather than crashing the parser. *)
  let reg = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.histogram reg ~lo:0. ~hi:1. "empty_us");
  let parsed =
    Telemetry.Export.of_jsonl
      (Telemetry.Export.to_jsonl (Telemetry.Registry.snapshot reg))
  in
  match parsed with
  | [ { Telemetry.Registry.value = Histogram s; _ } ] ->
      checki "count zero" 0 s.count;
      checkb "mean is nan" true (Float.is_nan s.mean)
  | _ -> Alcotest.fail "expected one histogram sample"

let test_prometheus_empty_histogram () =
  (* An empty histogram must render finite text: count 0, sum 0, and no
     quantile lines (there is no data to summarize) — never NaN. *)
  let reg = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.histogram reg ~lo:0. ~hi:1. "empty_us");
  let text =
    Telemetry.Export.to_prometheus (Telemetry.Registry.snapshot reg)
  in
  checkb "count 0" true (contains_sub text "empty_us_count 0");
  checkb "sum 0" true (contains_sub text "empty_us_sum 0");
  checkb "no quantiles" false (contains_sub text "quantile");
  checkb "no NaN anywhere" false (contains_sub text "NaN")

let test_prometheus_single_observation () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.Histogram.observe
    (Telemetry.Registry.histogram reg ~lo:0. ~hi:10. "one_us")
    2.5;
  let text =
    Telemetry.Export.to_prometheus (Telemetry.Registry.snapshot reg)
  in
  checkb "count 1" true (contains_sub text "one_us_count 1");
  checkb "sum 2.5" true (contains_sub text "one_us_sum 2.5");
  checkb "quantiles present" true
    (contains_sub text "one_us{quantile=\"0.5\"}");
  checkb "no NaN anywhere" false (contains_sub text "NaN")

let test_table_export () =
  let out =
    Format.asprintf "%a" Telemetry.Export.pp_table
      (Telemetry.Registry.snapshot (sample_registry ()))
  in
  checkb "mentions alpha_total" true
    (String.length out > 0
    &&
    let needle = "alpha_total" in
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0)

(* --- Trace ------------------------------------------------------------------- *)

let test_trace_span_records_duration () =
  let reg = Telemetry.Registry.create () in
  let result = Telemetry.Trace.with_span ~registry:reg "unit_test" (fun () -> 6 * 7) in
  checki "span returns thunk result" 42 result;
  let samples = Telemetry.Registry.snapshot reg in
  let span =
    List.find_opt
      (fun s ->
        s.Telemetry.Registry.name = "span_duration_us"
        && s.Telemetry.Registry.labels = [ ("span", "unit_test") ])
      samples
  in
  match span with
  | Some { Telemetry.Registry.value = Histogram s; _ } ->
      checki "one observation" 1 s.count
  | _ -> Alcotest.fail "span histogram missing"

let test_trace_event_counts () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Trace.event ~registry:reg "chunk_lost" [ ("chunk", "3") ];
  Telemetry.Trace.event ~registry:reg "chunk_lost" [ ("chunk", "4") ];
  let samples = Telemetry.Registry.snapshot reg in
  match
    List.find_opt
      (fun s ->
        s.Telemetry.Registry.name = "events_total"
        && s.Telemetry.Registry.labels = [ ("event", "chunk_lost") ])
      samples
  with
  | Some { Telemetry.Registry.value = Counter n; _ } ->
      checki "events counted" 2 n
  | _ -> Alcotest.fail "event counter missing"

let test_trace_span_propagates_exceptions () =
  let reg = Telemetry.Registry.create () in
  let raised =
    match
      Telemetry.Trace.with_span ~registry:reg "boom" (fun () -> failwith "boom")
    with
    | _ -> false
    | exception Failure _ -> true
  in
  checkb "exception propagates" true raised;
  (* The duration is still recorded on the failing path. *)
  match
    List.find_opt
      (fun s -> s.Telemetry.Registry.name = "span_duration_us")
      (Telemetry.Registry.snapshot reg)
  with
  | Some { Telemetry.Registry.value = Histogram s; _ } ->
      checki "failed span recorded" 1 s.count
  | _ -> Alcotest.fail "span histogram missing"

let test_level_of_verbosity () =
  let check_level name expected actual =
    checkb name true (expected = actual)
  in
  check_level "0 is off" None (Telemetry.Trace.level_of_verbosity 0);
  check_level "1 is warning" (Some Logs.Warning)
    (Telemetry.Trace.level_of_verbosity 1);
  check_level "2 is info" (Some Logs.Info)
    (Telemetry.Trace.level_of_verbosity 2);
  check_level "3+ is debug" (Some Logs.Debug)
    (Telemetry.Trace.level_of_verbosity 7)

(* --- merge ------------------------------------------------------------------ *)

let test_merge_reduces () =
  let into = Telemetry.Registry.create () in
  let src = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter into "writes_total")
    ~by:10;
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter src "writes_total")
    ~by:32;
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge into "depth") 1.;
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge src "depth") 4.;
  let h_into = Telemetry.Registry.histogram into ~lo:0. ~hi:10. "lat_us" in
  let h_src = Telemetry.Registry.histogram src ~lo:0. ~hi:10. "lat_us" in
  List.iter (Telemetry.Registry.Histogram.observe h_into) [ 1.; 2. ];
  List.iter (Telemetry.Registry.Histogram.observe h_src) [ 3.; 9. ];
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter src "events_total")
    ~by:5;
  Telemetry.Registry.merge ~into src;
  checki "counters add" 42
    (Telemetry.Registry.Counter.value
       (Telemetry.Registry.counter into "writes_total"));
  checkf 1e-9 "gauge adopts source" 4.
    (Telemetry.Registry.Gauge.value (Telemetry.Registry.gauge into "depth"));
  checki "histogram count" 4 (Telemetry.Registry.Histogram.count h_into);
  checkf 1e-9 "histogram mean exact" 3.75
    (Telemetry.Registry.Histogram.mean h_into);
  checkf 1e-9 "histogram max" 9. (Telemetry.Registry.Histogram.max h_into);
  checki "metric missing from target registered on the fly" 5
    (Telemetry.Registry.Counter.value
       (Telemetry.Registry.counter into "events_total"))

let test_merge_null_noop () =
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "x_total" in
  Telemetry.Registry.Counter.incr c;
  Telemetry.Registry.merge ~into:reg Telemetry.Registry.null;
  Telemetry.Registry.merge ~into:Telemetry.Registry.null reg;
  checki "live side unchanged" 1 (Telemetry.Registry.Counter.value c);
  checkb "null snapshot still empty" true
    (Telemetry.Registry.snapshot Telemetry.Registry.null = [])

let test_unshared_registry () =
  (* Unshared registries back metrics with plain refs instead of atomics;
     values, snapshots, and merging into a shared target must behave
     exactly like the shared flavour. *)
  let local = Telemetry.Registry.create ~shared:false () in
  checkb "is_shared false" false (Telemetry.Registry.is_shared local);
  checkb "default is shared" true
    (Telemetry.Registry.is_shared (Telemetry.Registry.create ()));
  let c = Telemetry.Registry.counter local "ops_total" in
  Telemetry.Registry.Counter.incr c ~by:3;
  Telemetry.Registry.Counter.incr c;
  checki "local counter counts" 4 (Telemetry.Registry.Counter.value c);
  checkb "negative incr still rejected" true
    (raises_invalid (fun () -> Telemetry.Registry.Counter.incr c ~by:(-1)));
  checki "value unchanged after rejection" 4
    (Telemetry.Registry.Counter.value c);
  let g = Telemetry.Registry.gauge local "depth" in
  Telemetry.Registry.Gauge.set g 2.;
  Telemetry.Registry.Gauge.add g 1.5;
  checkf 1e-9 "local gauge arithmetic" 3.5 (Telemetry.Registry.Gauge.value g);
  let h = Telemetry.Registry.histogram local ~lo:1. ~hi:100. "lat" in
  List.iter (Telemetry.Registry.Histogram.observe h) [ 1.; 10.; 100. ];
  checki "local histogram count" 3 (Telemetry.Registry.Histogram.count h);
  let into = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter into "ops_total")
    ~by:10;
  Telemetry.Registry.merge ~into local;
  checki "merge local into shared adds" 14
    (Telemetry.Registry.Counter.value
       (Telemetry.Registry.counter into "ops_total"));
  checki "merged histogram lands shared" 3
    (Telemetry.Registry.Histogram.count
       (Telemetry.Registry.histogram into ~lo:1. ~hi:100. "lat"))

let test_merge_kind_clash_raises () =
  let into = Telemetry.Registry.create () in
  let src = Telemetry.Registry.create () in
  ignore (Telemetry.Registry.counter into "m_total");
  ignore (Telemetry.Registry.gauge src "m_total");
  checkb "kind clash raises" true
    (raises_invalid (fun () -> Telemetry.Registry.merge ~into src))

(* --- qcheck: snapshot determinism under random registration orders ---------- *)

let prop_snapshot_order_independent =
  QCheck.Test.make ~count:100
    ~name:"snapshot independent of registration order"
    QCheck.(list (int_range 0 9))
    (fun ids ->
      let register reg order =
        List.iter
          (fun i ->
            Telemetry.Registry.Counter.incr
              (Telemetry.Registry.counter reg
                 (Printf.sprintf "m%d_total" i)
                 ~labels:[ ("i", string_of_int i) ]))
          order
      in
      let reg1 = Telemetry.Registry.create ()
      and reg2 = Telemetry.Registry.create () in
      register reg1 ids;
      register reg2 (List.rev ids);
      let key s =
        (s.Telemetry.Registry.name,
         Telemetry.Registry.Labels.to_string s.Telemetry.Registry.labels)
      in
      List.map key (Telemetry.Registry.snapshot reg1)
      = List.map key (Telemetry.Registry.snapshot reg2))

(* --- qcheck: JSONL round-trip over exotic metric populations ---------------- *)

(* Label values may contain anything except '"', '\n' and '=' (the
   registry rejects those); lean on the characters the JSON escaper has
   to work for: backslashes, braces, commas, colons, tabs. *)
let exotic_string_gen =
  let chars = "abcXYZ 0123456789{},\\:/._-+%'\t" in
  QCheck.Gen.(
    string_size
      ~gen:(map (String.get chars) (int_range 0 (String.length chars - 1)))
      (int_range 0 10))

let spec_gen =
  QCheck.Gen.(
    triple (int_range 0 2) exotic_string_gen
      (list_size (int_range 0 5) (float_bound_inclusive 100.)))

let prop_jsonl_roundtrip =
  QCheck.Test.make ~count:100 ~name:"of_jsonl inverts to_jsonl (exotic labels)"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) spec_gen))
    (fun specs ->
      let reg = Telemetry.Registry.create () in
      List.iteri
        (fun i (kind, lv, obs) ->
          (* Distinct names per spec: no kind clashes by construction. *)
          let name = Printf.sprintf "m%d%s" i (if kind = 0 then "_total" else "") in
          let labels = if lv = "" then [] else [ ("l", lv) ] in
          match kind with
          | 0 ->
              Telemetry.Registry.Counter.incr
                (Telemetry.Registry.counter reg ~labels name)
                ~by:(List.length obs)
          | 1 ->
              Telemetry.Registry.Gauge.set
                (Telemetry.Registry.gauge reg ~labels name)
                (match obs with [] -> nan | x :: _ -> x -. 50.)
          | _ ->
              let h =
                Telemetry.Registry.histogram reg ~labels ~lo:0. ~hi:100. name
              in
              List.iter (Telemetry.Registry.Histogram.observe h) obs)
        specs;
      let samples = Telemetry.Registry.snapshot reg in
      let parsed =
        Telemetry.Export.of_jsonl (Telemetry.Export.to_jsonl samples)
      in
      (* %.17g makes finite floats exact; non-finite travels as null and
         comes back nan, so compare nan-aware. *)
      let feq a b = (Float.is_nan a && Float.is_nan b) || a = b in
      List.length samples = List.length parsed
      && List.for_all2
           (fun (a : Telemetry.Registry.sample)
                (b : Telemetry.Registry.sample) ->
             a.name = b.name
             && Telemetry.Registry.Labels.to_string a.labels
                = Telemetry.Registry.Labels.to_string b.labels
             &&
             match (a.value, b.value) with
             | Counter x, Counter y -> x = y
             | Gauge x, Gauge y -> feq x y
             | Histogram x, Histogram y ->
                 x.count = y.count && feq x.mean y.mean && feq x.min y.min
                 && feq x.max y.max && feq x.p50 y.p50 && feq x.p90 y.p90
                 && feq x.p99 y.p99
             | _ -> false)
           samples parsed)

let suite =
  [
    ("counter and gauge basics", `Quick, test_counter_gauge_basics);
    ("label canonicalization", `Quick, test_label_canonicalization);
    ("kind clash raises", `Quick, test_kind_clash_raises);
    ("snapshot determinism", `Quick, test_snapshot_determinism);
    ("null registry inert", `Quick, test_null_registry_inert);
    ("prometheus format", `Quick, test_prometheus_format);
    ("prometheus empty histogram", `Quick, test_prometheus_empty_histogram);
    ("prometheus single observation", `Quick,
     test_prometheus_single_observation);
    ("labels escaping", `Quick, test_labels_escaping);
    ("jsonl roundtrip", `Quick, test_jsonl_roundtrip);
    ("jsonl non-finite", `Quick, test_jsonl_nonfinite);
    ("table export", `Quick, test_table_export);
    ("trace span records duration", `Quick, test_trace_span_records_duration);
    ("trace event counts", `Quick, test_trace_event_counts);
    ("trace span propagates exceptions", `Quick,
     test_trace_span_propagates_exceptions);
    ("level_of_verbosity", `Quick, test_level_of_verbosity);
    ("registry merge reduces", `Quick, test_merge_reduces);
    ("registry merge null no-op", `Quick, test_merge_null_noop);
    ("unshared registry flavour", `Quick, test_unshared_registry);
    ("registry merge kind clash", `Quick, test_merge_kind_clash_raises);
    QCheck_alcotest.to_alcotest prop_snapshot_order_independent;
    QCheck_alcotest.to_alcotest prop_jsonl_roundtrip;
  ]
