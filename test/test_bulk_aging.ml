(* Differential suite pinning the bulk-aging fast path to the per-op
   oracle.

   Twin devices are built from the same seed; one is aged through
   [Workload.Aging.run_epoch ~path:Per_op] (the retained one-call-per-
   write loop), the other through [~path:Auto] (the write-stream fast
   path).  After every epoch the outcomes and the workload RNG states
   must be identical — equal RNG states prove the two paths consumed
   exactly the same draws — and at the end the devices must agree on
   every observable: counters, capacity, liveness, write amplification,
   background stats, wear stats, chip op counts, telemetry snapshots and
   a full logical read-back.  Configurations cover all four device
   designs, active telemetry + monitor sampling, injected media faults,
   crash-hook fallback, and whole-fleet runs at jobs 1 and jobs 4. *)

module Defaults = Experiments.Defaults

let geometry = Defaults.geometry
let model = Defaults.model

type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

let kind_label = Defaults.kind_label

type twin = {
  dev : Ftl.Device_intf.packed;
  chip : Flash.Chip.t;
  engine : Ftl.Engine.t;
}

let make_twin ?registry (kind : kind) ~seed =
  let rng = Sim.Rng.create seed in
  match kind with
  | `Baseline ->
      let d = Ftl.Baseline_ssd.create ?registry ~geometry ~model ~rng () in
      {
        dev = Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d);
        chip = Ftl.Engine.chip (Ftl.Baseline_ssd.engine d);
        engine = Ftl.Baseline_ssd.engine d;
      }
  | `Cvss ->
      let d = Ftl.Cvss.create ?registry ~geometry ~model ~rng () in
      {
        dev = Ftl.Device_intf.Packed ((module Ftl.Cvss), d);
        chip = Ftl.Engine.chip (Ftl.Cvss.engine d);
        engine = Ftl.Cvss.engine d;
      }
  | (`Shrinks | `Regens) as k ->
      let mode =
        match k with
        | `Shrinks -> Salamander.Device.Shrink_s
        | `Regens -> Salamander.Device.Regen_s
      in
      let d =
        Salamander.Device.create
          ~config:(Defaults.salamander_config ~mode)
          ?registry ~geometry ~model ~rng ()
      in
      {
        dev = Salamander.Device.pack d;
        chip = Ftl.Engine.chip (Salamander.Device.engine d);
        engine = Salamander.Device.engine d;
      }

let make_pattern dev =
  Workload.Pattern.uniform
    ~window:
      (Stdlib.max 1
         (int_of_float
            (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity dev))))
    ~read_fraction:0.

(* Exact float equality including the nan = nan case (fresh devices have
   WAF = nan). *)
let float_identical a b = Stdlib.compare a b = 0

let check_same_state ~what a b =
  let fail fmt = Alcotest.failf ("%s: " ^^ fmt) what in
  let ha = Ftl.Device_intf.host_writes a.dev
  and hb = Ftl.Device_intf.host_writes b.dev in
  if ha <> hb then fail "host_writes %d <> %d" ha hb;
  let ca = Ftl.Device_intf.logical_capacity a.dev
  and cb = Ftl.Device_intf.logical_capacity b.dev in
  if ca <> cb then fail "logical_capacity %d <> %d" ca cb;
  if Ftl.Device_intf.alive a.dev <> Ftl.Device_intf.alive b.dev then
    fail "alive flags diverged";
  let wa = Ftl.Device_intf.write_amplification a.dev
  and wb = Ftl.Device_intf.write_amplification b.dev in
  if not (float_identical wa wb) then fail "WAF %.17g <> %.17g" wa wb;
  if Ftl.Device_intf.bg_stats a.dev <> Ftl.Device_intf.bg_stats b.dev then
    fail "bg_stats diverged";
  if Stdlib.compare (Ftl.Device_intf.wear_stats a.dev)
       (Ftl.Device_intf.wear_stats b.dev)
     <> 0
  then fail "wear_stats diverged";
  if Flash.Chip.programs a.chip <> Flash.Chip.programs b.chip then
    fail "chip programs %d <> %d" (Flash.Chip.programs a.chip)
      (Flash.Chip.programs b.chip);
  if Flash.Chip.erases a.chip <> Flash.Chip.erases b.chip then
    fail "chip erases diverged";
  if Ftl.Engine.gc_runs a.engine <> Ftl.Engine.gc_runs b.engine then
    fail "gc_runs diverged";
  if Ftl.Engine.padded_slots a.engine <> Ftl.Engine.padded_slots b.engine then
    fail "padded_slots diverged";
  if
    Ftl.Engine.buffered_opages a.engine <> Ftl.Engine.buffered_opages b.engine
  then fail "buffered_opages diverged";
  (* Full logical read-back: both twins read the same LBA range in the
     same order, so the read-path RNG draws and read-disturb stay
     symmetric and every payload (or error) must match. *)
  let span = Ftl.Device_intf.initial_capacity a.dev in
  for lba = 0 to span - 1 do
    let ra = Ftl.Device_intf.read a.dev ~lba
    and rb = Ftl.Device_intf.read b.dev ~lba in
    if ra <> rb then fail "read-back diverged at lba %d" lba
  done

(* Age both twins through the given per-epoch quotas, checking outcome
   and RNG-state equality after every epoch. *)
let drive ?registry_a ?registry_b ?(inject = fun _ _ -> ()) ?(sample = fun _ _ -> ())
    ~kind ~seed quotas =
  let a = make_twin ?registry:registry_a kind ~seed in
  let b = make_twin ?registry:registry_b kind ~seed in
  let rng_a = Sim.Rng.create (seed + 7) in
  let rng_b = Sim.Rng.create (seed + 7) in
  let pat_a = make_pattern a.dev in
  let pat_b = make_pattern b.dev in
  List.iteri
    (fun i quota ->
      inject i a.chip;
      inject i b.chip;
      let oa =
        Workload.Aging.run_epoch ~path:Workload.Aging.Per_op ~rng:rng_a
          ~pattern:pat_a ~device:a.dev ~quota ()
      in
      let ob =
        Workload.Aging.run_epoch ~path:Workload.Aging.Auto ~rng:rng_b
          ~pattern:pat_b ~device:b.dev ~quota ()
      in
      if oa <> ob then
        Alcotest.failf "%s seed %d epoch %d: outcomes diverged (%d/%b vs %d/%b)"
          (kind_label kind) seed i oa.Workload.Aging.host_writes
          oa.Workload.Aging.died ob.Workload.Aging.host_writes
          ob.Workload.Aging.died;
      if not (Sim.Rng.equal rng_a rng_b) then
        Alcotest.failf "%s seed %d epoch %d: RNG streams diverged"
          (kind_label kind) seed i;
      sample i (a, b))
    quotas;
  check_same_state
    ~what:(Printf.sprintf "%s seed %d" (kind_label kind) seed)
    a b

(* --- property: random epoch schedules, every design --------------------- *)

let quotas_gen =
  QCheck.Gen.(list_size (int_range 2 20) (int_range 0 2_500))

let differential_prop kind =
  QCheck.Test.make ~count:8
    ~name:(Printf.sprintf "bulk aging bit-exact (%s)" (kind_label kind))
    QCheck.(
      make
        Gen.(pair (int_range 0 10_000) quotas_gen)
        ~print:(fun (seed, quotas) ->
          Printf.sprintf "seed %d, quotas [%s]" seed
            (String.concat "; " (List.map string_of_int quotas))))
    (fun (seed, quotas) ->
      drive ~kind ~seed quotas;
      true)

(* --- deterministic: age to death ---------------------------------------- *)

(* Run epochs until both twins die: the No_space / recovery / death
   orders are the trickiest part of the equivalence and always get
   exercised. *)
let test_to_death kind () =
  let a = make_twin kind ~seed:4242 in
  let b = make_twin kind ~seed:4242 in
  let rng_a = Sim.Rng.create 17 in
  let rng_b = Sim.Rng.create 17 in
  let pat_a = make_pattern a.dev in
  let pat_b = make_pattern b.dev in
  let epochs = ref 0 in
  let continue = ref true in
  while !continue do
    incr epochs;
    let oa =
      Workload.Aging.run_epoch ~path:Workload.Aging.Per_op ~rng:rng_a
        ~pattern:pat_a ~device:a.dev ~quota:2_000 ()
    in
    let ob =
      Workload.Aging.run_epoch ~path:Workload.Aging.Auto ~rng:rng_b
        ~pattern:pat_b ~device:b.dev ~quota:2_000 ()
    in
    if oa <> ob then
      Alcotest.failf "epoch %d: outcomes diverged before death" !epochs;
    if not (Sim.Rng.equal rng_a rng_b) then
      Alcotest.failf "epoch %d: RNG diverged before death" !epochs;
    if oa.Workload.Aging.died || !epochs > 500 then continue := false
  done;
  Alcotest.(check bool)
    "device actually died" false
    (Ftl.Device_intf.alive a.dev);
  check_same_state ~what:(Printf.sprintf "%s at death" (kind_label kind)) a b

(* --- telemetry + monitor sampling config -------------------------------- *)

let test_telemetry_and_monitor () =
  let reg_a = Telemetry.Registry.create ~shared:false () in
  let reg_b = Telemetry.Registry.create ~shared:false () in
  let mon_a = Monitor.Engine.create ~sample_every:3 () in
  let mon_b = Monitor.Engine.create ~sample_every:3 () in
  let sample i ((_ : twin), (_ : twin)) =
    (* the monitor's sampling cadence must not perturb either path *)
    if Monitor.Engine.due mon_a ~tick:i then begin
      Monitor.Engine.sample mon_a ~time:(float_of_int i) reg_a;
      Monitor.Engine.sample mon_b ~time:(float_of_int i) reg_b
    end
  in
  drive ~registry_a:reg_a ~registry_b:reg_b ~sample ~kind:`Regens ~seed:31
    [ 700; 0; 1_300; 256; 255; 257; 2_000; 1; 4_000; 2_500 ];
  let sa = Telemetry.Registry.snapshot reg_a in
  let sb = Telemetry.Registry.snapshot reg_b in
  if Stdlib.compare sa sb <> 0 then
    Alcotest.fail "telemetry snapshots diverged between per-op and bulk paths";
  Alcotest.(check int) "monitor samples equal" (Monitor.Engine.samples mon_a)
    (Monitor.Engine.samples mon_b)

(* --- fault-injection config --------------------------------------------- *)

(* Transient and sticky RBER faults raise page error rates, which steer
   retirement decisions (erase-hook tiredness checks) and the read-back
   retry ladder on both twins identically. *)
let test_with_faults () =
  let ppb = geometry.Flash.Geometry.pages_per_block in
  let blocks = geometry.Flash.Geometry.blocks in
  let inject i chip =
    let block = (i * 5) mod blocks and page = (i * 7) mod ppb in
    Flash.Chip.inject chip ~block ~page (Flash.Chip.Transient_rber 2e-3);
    if i mod 3 = 0 then
      Flash.Chip.inject chip ~block ~page (Flash.Chip.Sticky_rber 5e-4)
  in
  List.iter
    (fun kind ->
      drive ~inject ~kind ~seed:1203
        [ 900; 1_100; 2_000; 700; 3_000; 2_500; 1_800 ])
    ([ `Baseline; `Regens ] : kind list)

(* --- crash-hook fallback ------------------------------------------------- *)

(* With a crash hook armed the stream is unsupported; Auto must detect
   that (consuming nothing) and replay the epoch per-op. *)
let test_crash_hook_falls_back () =
  let a = make_twin `Baseline ~seed:77 in
  let b = make_twin `Baseline ~seed:77 in
  Ftl.Engine.set_crash_hook b.engine (Some (fun _ -> ()));
  Alcotest.(check bool)
    "hooked engine is not stream-capable" false
    (Ftl.Engine.stream_capable b.engine);
  let rng_a = Sim.Rng.create 5 in
  let rng_b = Sim.Rng.create 5 in
  let pat_a = make_pattern a.dev in
  let pat_b = make_pattern b.dev in
  let oa =
    Workload.Aging.run_epoch ~path:Workload.Aging.Per_op ~rng:rng_a
      ~pattern:pat_a ~device:a.dev ~quota:5_000 ()
  in
  let ob =
    Workload.Aging.run_epoch ~path:Workload.Aging.Auto ~rng:rng_b
      ~pattern:pat_b ~device:b.dev ~quota:5_000 ()
  in
  Alcotest.(check bool) "fallback outcome equal" true (oa = ob);
  Alcotest.(check bool) "fallback RNG equal" true (Sim.Rng.equal rng_a rng_b);
  Ftl.Engine.set_crash_hook b.engine None;
  check_same_state ~what:"crash-hook fallback" a b

(* --- whole-fleet equality at jobs 1 and jobs 4 --------------------------- *)

let fleet_result ~aging ~ctx =
  Experiments.Fleet.run ~devices:8 ~days:50 ~seed:99 ~ctx ~aging `Regens

let test_fleet_jobs1 () =
  let a = fleet_result ~aging:Workload.Aging.Per_op ~ctx:Experiments.Ctx.default in
  let b = fleet_result ~aging:Workload.Aging.Auto ~ctx:Experiments.Ctx.default in
  Alcotest.(check bool) "fleet results equal (sequential)" true (a = b)

let test_fleet_jobs4 () =
  let a = fleet_result ~aging:Workload.Aging.Per_op ~ctx:Experiments.Ctx.default in
  let b =
    Parallel.Pool.with_pool ~domains:4 (fun pool ->
        fleet_result ~aging:Workload.Aging.Auto
          ~ctx:(Experiments.Ctx.make ~pool ()))
  in
  Alcotest.(check bool) "fleet results equal (per-op seq vs bulk jobs4)" true
    (a = b)

(* --- epoch coalescing ---------------------------------------------------- *)

let test_epoch_days_boundaries () =
  let r =
    Experiments.Fleet.run ~devices:4 ~days:23 ~seed:7 ~epoch_days:5 `Regens
  in
  let days = List.map (fun s -> s.Experiments.Fleet.day) r.Experiments.Fleet.snapshots in
  Alcotest.(check (list int))
    "snapshots at epoch boundaries" [ 0; 5; 10; 15; 20; 23 ] days;
  Alcotest.(check bool) "accepted writes" true (r.Experiments.Fleet.total_host_writes > 0)

let test_epoch_days_one_matches_default () =
  let a = Experiments.Fleet.run ~devices:4 ~days:30 ~seed:7 `Regens in
  let b = Experiments.Fleet.run ~devices:4 ~days:30 ~seed:7 ~epoch_days:1 `Regens in
  Alcotest.(check bool) "epoch_days:1 is the default loop" true (a = b)

let test_epoch_days_invalid () =
  Alcotest.check_raises "epoch_days 0 rejected"
    (Invalid_argument "Fleet.run: epoch_days must be >= 1") (fun () ->
      ignore (Experiments.Fleet.run ~devices:1 ~days:1 ~epoch_days:0 `Regens))

(* --- allocation regression ----------------------------------------------- *)

(* Steady-state hot paths must stay lean: the bulk write stream and the
   engine read path are the two per-op costs multi-year fleet runs pay
   billions of times.  Observed today: ~294 minor words/write on the
   bulk path (mostly xoshiro Int64 boxing per draw plus amortized GC
   relocation work) and ~43/read.  Bounds sit at ≈2x observed so they
   only trip on a real regression — a per-op list, array or closure —
   not on noise. *)

let minor_words_per_op ~ops f =
  let before = Gc.minor_words () in
  f ();
  (Gc.minor_words () -. before) /. float_of_int ops

let test_bulk_write_allocation () =
  let t = make_twin `Regens ~seed:2024 in
  let rng = Sim.Rng.create 11 in
  let pattern = make_pattern t.dev in
  (* warm-up: reach GC steady state so the measured window is all hot path *)
  ignore
    (Workload.Aging.run_epoch ~rng ~pattern ~device:t.dev ~quota:30_000 ());
  let ops = 10_000 in
  let per_op =
    minor_words_per_op ~ops (fun () ->
        ignore
          (Workload.Aging.run_epoch ~rng ~pattern ~device:t.dev ~quota:ops ()))
  in
  if per_op > 600. then
    Alcotest.failf "bulk write path allocates %.1f minor words/write (> 600)"
      per_op

let test_read_allocation () =
  let t = make_twin `Baseline ~seed:2025 in
  let rng = Sim.Rng.create 12 in
  let pattern = make_pattern t.dev in
  ignore
    (Workload.Aging.run_epoch ~rng ~pattern ~device:t.dev ~quota:20_000 ());
  let span = Ftl.Device_intf.initial_capacity t.dev in
  let ops = 4 * span in
  let per_op =
    minor_words_per_op ~ops (fun () ->
        for i = 0 to ops - 1 do
          ignore (Ftl.Device_intf.read t.dev ~lba:(i mod span))
        done)
  in
  if per_op > 90. then
    Alcotest.failf "read path allocates %.1f minor words/read (> 90)" per_op

let suite =
  [
    QCheck_alcotest.to_alcotest (differential_prop `Baseline);
    QCheck_alcotest.to_alcotest (differential_prop `Cvss);
    QCheck_alcotest.to_alcotest (differential_prop `Shrinks);
    QCheck_alcotest.to_alcotest (differential_prop `Regens);
    ("bulk aging to death (baseline)", `Slow, test_to_death `Baseline);
    ("bulk aging to death (regens)", `Slow, test_to_death `Regens);
    ("telemetry + monitor sampling bit-exact", `Quick, test_telemetry_and_monitor);
    ("fault injection bit-exact", `Quick, test_with_faults);
    ("crash hook falls back per-op", `Quick, test_crash_hook_falls_back);
    ("fleet per-op vs bulk (jobs 1)", `Slow, test_fleet_jobs1);
    ("fleet per-op vs bulk (jobs 4)", `Slow, test_fleet_jobs4);
    ("epoch_days snapshots boundaries", `Quick, test_epoch_days_boundaries);
    ("epoch_days 1 is default", `Quick, test_epoch_days_one_matches_default);
    ("epoch_days validation", `Quick, test_epoch_days_invalid);
    ("allocation: bulk write path", `Slow, test_bulk_write_allocation);
    ("allocation: read path", `Slow, test_read_allocation);
  ]
