(* Tests for the ECC library: bit arrays, GF(2^m) field laws, BCH
   encode/decode under injected errors, and the analytic reliability model
   cross-checked against the live codec. *)

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Bitarray ------------------------------------------------------- *)

let test_bitarray_basic () =
  let b = Ecc.Bitarray.create 20 in
  checki "fresh length" 20 (Ecc.Bitarray.length b);
  checki "fresh popcount" 0 (Ecc.Bitarray.popcount b);
  Ecc.Bitarray.set b 0 true;
  Ecc.Bitarray.set b 7 true;
  Ecc.Bitarray.set b 8 true;
  Ecc.Bitarray.set b 19 true;
  checki "popcount after sets" 4 (Ecc.Bitarray.popcount b);
  checkb "bit 0" true (Ecc.Bitarray.get b 0);
  checkb "bit 1" false (Ecc.Bitarray.get b 1);
  Ecc.Bitarray.flip b 0;
  checkb "bit 0 flipped" false (Ecc.Bitarray.get b 0);
  checki "popcount after flip" 3 (Ecc.Bitarray.popcount b)

let test_bitarray_bounds () =
  let b = Ecc.Bitarray.create 8 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitarray: index out of bounds")
    (fun () -> ignore (Ecc.Bitarray.get b (-1)));
  Alcotest.check_raises "get len" (Invalid_argument "Bitarray: index out of bounds")
    (fun () -> ignore (Ecc.Bitarray.get b 8))

let test_bitarray_string_roundtrip () =
  let s = "1011001110001" in
  let b = Ecc.Bitarray.of_string s in
  check Alcotest.string "roundtrip" s (Ecc.Bitarray.to_string b)

let test_bitarray_xor () =
  let a = Ecc.Bitarray.of_string "1100" in
  let b = Ecc.Bitarray.of_string "1010" in
  Ecc.Bitarray.xor_into ~dst:a b;
  check Alcotest.string "xor" "0110" (Ecc.Bitarray.to_string a)

let test_bitarray_iter_set () =
  let b = Ecc.Bitarray.of_string "0100100110" in
  let seen = ref [] in
  Ecc.Bitarray.iter_set b (fun i -> seen := i :: !seen);
  check (Alcotest.list Alcotest.int) "set positions" [ 1; 4; 7; 8 ]
    (List.rev !seen)

let test_bitarray_randomize_padding () =
  (* Padding bits beyond the length must stay clear so popcount is exact. *)
  let rng = Sim.Rng.create 7 in
  let b = Ecc.Bitarray.create 13 in
  for _ = 1 to 50 do
    Ecc.Bitarray.randomize rng b;
    let manual = ref 0 in
    for i = 0 to 12 do
      if Ecc.Bitarray.get b i then incr manual
    done;
    checki "popcount matches visible bits" !manual (Ecc.Bitarray.popcount b)
  done

(* --- Galois field ---------------------------------------------------- *)

let test_field_laws () =
  let field = Ecc.Galois.create 8 in
  let order = Ecc.Galois.order field in
  checki "order" 255 order;
  (* Spot-check associativity/commutativity/distributivity over samples. *)
  let rng = Sim.Rng.create 42 in
  for _ = 1 to 500 do
    let a = Sim.Rng.int rng 256
    and b = Sim.Rng.int rng 256
    and c = Sim.Rng.int rng 256 in
    checki "mul commutative" (Ecc.Galois.mul field a b) (Ecc.Galois.mul field b a);
    checki "mul associative"
      (Ecc.Galois.mul field a (Ecc.Galois.mul field b c))
      (Ecc.Galois.mul field (Ecc.Galois.mul field a b) c);
    checki "distributive"
      (Ecc.Galois.mul field a (Ecc.Galois.add field b c))
      (Ecc.Galois.add field (Ecc.Galois.mul field a b) (Ecc.Galois.mul field a c))
  done

let test_field_inverse () =
  let field = Ecc.Galois.create 10 in
  for a = 1 to Ecc.Galois.order field do
    checki "a * a^-1 = 1" 1 (Ecc.Galois.mul field a (Ecc.Galois.inv field a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Ecc.Galois.inv field 0))

let test_field_alpha_cycle () =
  let field = Ecc.Galois.create 6 in
  let order = Ecc.Galois.order field in
  checki "alpha^order = 1" 1 (Ecc.Galois.alpha_pow field order);
  checki "alpha^-1 * alpha = 1" 1
    (Ecc.Galois.mul field (Ecc.Galois.alpha_pow field (-1))
       (Ecc.Galois.alpha_pow field 1));
  (* alpha generates the whole multiplicative group. *)
  let seen = Hashtbl.create order in
  for i = 0 to order - 1 do
    Hashtbl.replace seen (Ecc.Galois.alpha_pow field i) ()
  done;
  checki "alpha is primitive" order (Hashtbl.length seen)

(* --- GF polynomials --------------------------------------------------- *)

let test_poly_divmod () =
  let field = Ecc.Galois.create 4 in
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 200 do
    let random_poly degree =
      Ecc.Gf_poly.of_coefficients
        (Array.init (degree + 1) (fun _ -> Sim.Rng.int rng 16))
    in
    let a = random_poly (Sim.Rng.int_in rng 0 8) in
    let b = random_poly (Sim.Rng.int_in rng 0 4) in
    if not (Ecc.Gf_poly.is_zero b) then begin
      let q, r = Ecc.Gf_poly.divmod field a b in
      (* a = q*b + r and deg r < deg b *)
      let recomposed =
        Ecc.Gf_poly.add field (Ecc.Gf_poly.mul field q b) r
      in
      checkb "a = q*b + r" true (Ecc.Gf_poly.equal a recomposed);
      checkb "deg r < deg b" true
        (Ecc.Gf_poly.degree r < Stdlib.max 1 (Ecc.Gf_poly.degree b)
        || Ecc.Gf_poly.is_zero r)
    end
  done

let test_minimal_polynomial_has_root () =
  let field = Ecc.Galois.create 8 in
  for e = 1 to 20 do
    let poly = Ecc.Gf_poly.minimal_polynomial field e in
    (* alpha^e must be a root, and all coefficients must be binary. *)
    checki "root" 0 (Ecc.Gf_poly.eval field poly (Ecc.Galois.alpha_pow field e));
    Array.iteri
      (fun i c ->
        checkb (Printf.sprintf "binary coefficient %d" i) true (c = 0 || c = 1))
      poly
  done

(* --- BCH -------------------------------------------------------------- *)

let inject_errors rng word count =
  (* Flip [count] distinct random positions; returns the positions. *)
  let len = Ecc.Bitarray.length word in
  let chosen = Hashtbl.create count in
  let rec pick () =
    let p = Sim.Rng.int rng len in
    if Hashtbl.mem chosen p then pick ()
    else begin
      Hashtbl.add chosen p ();
      Ecc.Bitarray.flip word p;
      p
    end
  in
  List.init count (fun _ -> pick ())

let bch_roundtrip ~m ~capability ~data_bits ~errors ~seed () =
  let code = Ecc.Bch.create ~m ~capability () in
  let rng = Sim.Rng.create seed in
  let data = Ecc.Bitarray.create data_bits in
  Ecc.Bitarray.randomize rng data;
  let original = Ecc.Bitarray.copy data in
  let parity = Ecc.Bch.encode code data in
  checkb "clean word passes" true
    (Ecc.Bch.syndromes_zero code ~data ~parity);
  (* Corrupt data and parity bits together. *)
  let total_positions = data_bits + Ecc.Bch.parity_bits code in
  let flips = Hashtbl.create errors in
  let rec corrupt remaining =
    if remaining > 0 then begin
      let p = Sim.Rng.int rng total_positions in
      if Hashtbl.mem flips p then corrupt remaining
      else begin
        Hashtbl.add flips p ();
        if p < data_bits then Ecc.Bitarray.flip data p
        else Ecc.Bitarray.flip parity (p - data_bits);
        corrupt (remaining - 1)
      end
    end
  in
  corrupt errors;
  match Ecc.Bch.decode code ~data ~parity with
  | Ecc.Bch.Uncorrectable -> Alcotest.fail "decoder gave up within capability"
  | Ecc.Bch.Corrected _ ->
      checkb "data restored" true (Ecc.Bitarray.equal data original)

let test_bch_roundtrips () =
  (* Sweep several field sizes, capabilities and error counts up to t. *)
  List.iter
    (fun (m, capability, data_bits) ->
      for errors = 0 to capability do
        bch_roundtrip ~m ~capability ~data_bits ~errors
          ~seed:((m * 1000) + (capability * 10) + errors)
          ()
      done)
    [ (5, 3, 10); (6, 2, 40); (7, 5, 60); (8, 8, 150); (10, 16, 700) ]

let test_bch_detects_overload () =
  (* Beyond capability the decoder must not silently "correct" to the
     original; it either reports Uncorrectable or miscorrects to a
     *different* valid codeword.  Either way the data differs from a
     clean decode only in detectable ways; we assert no false claim of
     success with restored data equality. *)
  let code = Ecc.Bch.create ~m:8 ~capability:4 () in
  let rng = Sim.Rng.create 99 in
  let trials = 100 in
  let silent_failures = ref 0 in
  for _ = 1 to trials do
    let data = Ecc.Bitarray.create 100 in
    Ecc.Bitarray.randomize rng data;
    let original = Ecc.Bitarray.copy data in
    let parity = Ecc.Bch.encode code data in
    ignore (inject_errors rng data 9);
    (match Ecc.Bch.decode code ~data ~parity with
    | Ecc.Bch.Uncorrectable -> ()
    | Ecc.Bch.Corrected _ ->
        if Ecc.Bitarray.equal data original then incr silent_failures);
    ()
  done;
  (* With 9 errors against t=4 the decoder can never land back on the
     original codeword (distance would be <= 2t < 9... within d_min). *)
  checki "never silently restores beyond capability" 0 !silent_failures

let test_bch_k_matches_generator () =
  let code = Ecc.Bch.create ~m:8 ~capability:8 () in
  checki "n" 255 (Ecc.Bch.n code);
  checki "n = k + parity" (Ecc.Bch.n code)
    (Ecc.Bch.k code + Ecc.Bch.parity_bits code);
  (* Parity never exceeds m*t, the textbook bound. *)
  checkb "parity <= m*t" true (Ecc.Bch.parity_bits code <= 8 * 8)

let test_bch_shortened_zero_data () =
  let code = Ecc.Bch.create ~m:6 ~capability:3 () in
  let data = Ecc.Bitarray.create 0 in
  let parity = Ecc.Bch.encode code data in
  checki "zero data gives zero parity" 0 (Ecc.Bitarray.popcount parity)

(* Property: random data, random error count within capability, always
   repaired. *)
let prop_bch_roundtrip =
  QCheck.Test.make ~count:150 ~name:"bch corrects <= t random errors"
    QCheck.(triple (int_range 0 5) (int_range 1 120) small_int)
    (fun (errors, data_bits, seed) ->
      let code = Ecc.Bch.create ~m:8 ~capability:5 () in
      let data_bits = Stdlib.min data_bits (Ecc.Bch.k code) in
      let rng = Sim.Rng.create seed in
      let data = Ecc.Bitarray.create data_bits in
      Ecc.Bitarray.randomize rng data;
      let original = Ecc.Bitarray.copy data in
      let parity = Ecc.Bch.encode code data in
      let total = data_bits + Ecc.Bch.parity_bits code in
      let errors = Stdlib.min errors total in
      let flipped = Hashtbl.create 8 in
      let injected = ref 0 in
      while !injected < errors do
        let p = Sim.Rng.int rng total in
        if not (Hashtbl.mem flipped p) then begin
          Hashtbl.add flipped p ();
          if p < data_bits then Ecc.Bitarray.flip data p
          else Ecc.Bitarray.flip parity (p - data_bits);
          incr injected
        end
      done;
      match Ecc.Bch.decode code ~data ~parity with
      | Ecc.Bch.Uncorrectable -> false
      | Ecc.Bch.Corrected _ -> Ecc.Bitarray.equal data original)

(* --- differential: table-driven hot paths vs naive reference ----------- *)

(* The optimized encode/syndrome/Chien paths must be bit-identical to the
   retained naive implementations, over random codes, random data lengths,
   and error patterns both within and beyond capability. *)

let differential_codes = [| (5, 3); (6, 2); (7, 4); (8, 5); (8, 8); (10, 8) |]

let decode_results_equal a b =
  match (a, b) with
  | Ecc.Bch.Uncorrectable, Ecc.Bch.Uncorrectable -> true
  | Ecc.Bch.Corrected xs, Ecc.Bch.Corrected ys -> xs = ys
  | _ -> false

let prop_bch_differential =
  QCheck.Test.make ~count:200 ~name:"fast codec bit-identical to reference"
    QCheck.(
      quad
        (int_range 0 (Array.length differential_codes - 1))
        (int_range 0 250) (int_range 0 30) small_int)
    (fun (code_index, data_bits, raw_errors, seed) ->
      let m, capability = differential_codes.(code_index) in
      let code = Ecc.Bch.create ~m ~capability () in
      let data_bits = Stdlib.min data_bits (Ecc.Bch.k code) in
      let rng = Sim.Rng.create (seed + 1) in
      let data = Ecc.Bitarray.create data_bits in
      Ecc.Bitarray.randomize rng data;
      let parity = Ecc.Bch.encode code data in
      let encode_agrees =
        Ecc.Bitarray.equal parity (Ecc.Bch.Reference.encode code data)
      in
      (* Spread errors over the whole stored word; up to ~2t of them, so
         the beyond-capability detection paths are exercised too. *)
      let total = data_bits + Ecc.Bch.parity_bits code in
      let errors = Stdlib.min raw_errors (Stdlib.min (2 * capability + 3) total) in
      let flipped = Hashtbl.create 8 in
      let injected = ref 0 in
      while !injected < errors do
        let p = Sim.Rng.int rng total in
        if not (Hashtbl.mem flipped p) then begin
          Hashtbl.add flipped p ();
          if p < data_bits then Ecc.Bitarray.flip data p
          else Ecc.Bitarray.flip parity (p - data_bits);
          incr injected
        end
      done;
      let syndromes_agree =
        Ecc.Bch.syndromes code ~data ~parity
        = Ecc.Bch.Reference.syndromes code ~data ~parity
      in
      let zero_agrees =
        Ecc.Bch.syndromes_zero code ~data ~parity
        = Array.for_all
            (fun s -> s = 0)
            (Ecc.Bch.Reference.syndromes code ~data ~parity)
      in
      (* Both decoders repair in place: run each on its own copy and
         compare results and repaired words. *)
      let d_fast = Ecc.Bitarray.copy data
      and p_fast = Ecc.Bitarray.copy parity in
      let d_ref = Ecc.Bitarray.copy data
      and p_ref = Ecc.Bitarray.copy parity in
      let r_fast = Ecc.Bch.decode code ~data:d_fast ~parity:p_fast in
      let r_ref = Ecc.Bch.Reference.decode code ~data:d_ref ~parity:p_ref in
      encode_agrees && syndromes_agree && zero_agrees
      && decode_results_equal r_fast r_ref
      && Ecc.Bitarray.equal d_fast d_ref
      && Ecc.Bitarray.equal p_fast p_ref)

(* --- codec cache ------------------------------------------------------- *)

let counter_value registry name =
  List.fold_left
    (fun acc (s : Telemetry.Registry.sample) ->
      match s.value with
      | Telemetry.Registry.Counter v when s.name = name -> acc + v
      | _ -> acc)
    0
    (Telemetry.Registry.snapshot registry)

let test_bch_shared_core_independent_telemetry () =
  let reg_a = Telemetry.Registry.create () in
  let reg_b = Telemetry.Registry.create () in
  let a = Ecc.Bch.create ~registry:reg_a ~m:8 ~capability:4 () in
  let b = Ecc.Bch.create ~registry:reg_b ~m:8 ~capability:4 () in
  (* The immutable tables are shared (one build per (m, capability))... *)
  checkb "generator physically shared" true
    (Ecc.Bch.generator a == Ecc.Bch.generator b);
  (* ...but telemetry stays per-instance. *)
  let decode_once code =
    let rng = Sim.Rng.create 5 in
    let data = Ecc.Bitarray.create 64 in
    Ecc.Bitarray.randomize rng data;
    let parity = Ecc.Bch.encode code data in
    Ecc.Bitarray.flip data 3;
    match Ecc.Bch.decode code ~data ~parity with
    | Ecc.Bch.Corrected [ 3 ] -> ()
    | _ -> Alcotest.fail "single injected error not corrected"
  in
  decode_once a;
  decode_once a;
  decode_once b;
  checki "codec a counted its decodes" 2 (counter_value reg_a "bch_decodes_total");
  checki "codec b counted its decodes" 1 (counter_value reg_b "bch_decodes_total")

let test_galois_memoized () =
  checkb "same field instance per m" true
    (Ecc.Galois.create 9 == Ecc.Galois.create 9)

let test_tolerable_rber_memo_consistent () =
  let p = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  let first = Ecc.Reliability.tolerable_rber p in
  check (Alcotest.float 0.) "memoized result identical" first
    (Ecc.Reliability.tolerable_rber p);
  checkb "distinct targets solve separately" true
    (Ecc.Reliability.tolerable_rber ~target:1e-6 p > first)

(* --- Code params and reliability -------------------------------------- *)

let test_code_params_flash_sector () =
  (* The paper's reference geometry: 2 KiB data chunks sharing a 2 KiB
     spare across 8 codewords of a 16 KiB fPage: 256 B spare each. *)
  let p = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  checki "m" 15 p.Ecc.Code_params.m;
  checki "t = spare_bits/m" (256 * 8 / 15) p.Ecc.Code_params.capability;
  check (Alcotest.float 1e-9) "code rate 8/9" (8. /. 9.)
    p.Ecc.Code_params.code_rate

let test_code_params_invalid () =
  Alcotest.check_raises "no spare"
    (Invalid_argument "Code_params: spare_bytes must be > 0") (fun () ->
      ignore (Ecc.Code_params.for_sector ~data_bytes:512 ~spare_bytes:0))

let test_reliability_monotone_in_rber () =
  let p = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  let previous = ref 0. in
  List.iter
    (fun rber ->
      let fail = Ecc.Reliability.codeword_fail_prob p ~rber in
      checkb
        (Printf.sprintf "fail prob increases at rber %g" rber)
        true
        (fail >= !previous);
      previous := fail)
    [ 1e-5; 1e-4; 1e-3; 3e-3; 1e-2; 3e-2 ]

let test_reliability_tolerable_rber_fixed_point () =
  let p = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  let rber = Ecc.Reliability.tolerable_rber p in
  (* At the threshold the failure probability equals the target. *)
  let fail = Ecc.Reliability.codeword_fail_prob p ~rber in
  checkb "threshold achieves target" true
    (Float.abs (fail -. Ecc.Reliability.default_codeword_target)
     /. Ecc.Reliability.default_codeword_target
    < 0.05);
  (* Sanity: a few-per-thousand RBER, the realistic ballpark for this
     geometry. *)
  checkb "threshold in plausible range" true (rber > 1e-4 && rber < 2e-2)

let test_reliability_tolerable_rber_grows_with_spare () =
  let small = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  let large = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:1024 in
  checkb "more spare tolerates more errors" true
    (Ecc.Reliability.tolerable_rber large
    > Ecc.Reliability.tolerable_rber small)

let test_reliability_page_vs_codeword () =
  let p = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  let rber = 4e-3 in
  let cw = Ecc.Reliability.codeword_fail_prob p ~rber in
  let page = Ecc.Reliability.page_fail_prob p ~codewords:8 ~rber in
  checkb "page fail above codeword fail" true (page >= cw);
  checkb "page fail below union bound" true (page <= (8. *. cw) +. 1e-12)

(* Cross-check: analytic binomial tail against Monte Carlo with the real
   codec for a small code where simulation is cheap. *)
let test_reliability_matches_live_codec () =
  let params = Ecc.Code_params.for_sector ~data_bytes:16 ~spare_bytes:8 in
  let code = Ecc.Code_params.codec params in
  let rber = 0.02 in
  let rng = Sim.Rng.create 2024 in
  let trials = 3000 in
  let failures = ref 0 in
  let data_bits = 8 * params.Ecc.Code_params.data_bytes in
  for _ = 1 to trials do
    let data = Ecc.Bitarray.create data_bits in
    Ecc.Bitarray.randomize rng data;
    let original = Ecc.Bitarray.copy data in
    let parity = Ecc.Bch.encode code data in
    (* Flip each stored bit independently with probability rber. *)
    for i = 0 to data_bits - 1 do
      if Sim.Rng.chance rng rber then Ecc.Bitarray.flip data i
    done;
    for i = 0 to Ecc.Bitarray.length parity - 1 do
      if Sim.Rng.chance rng rber then Ecc.Bitarray.flip parity i
    done;
    (match Ecc.Bch.decode code ~data ~parity with
    | Ecc.Bch.Uncorrectable -> incr failures
    | Ecc.Bch.Corrected _ ->
        if not (Ecc.Bitarray.equal data original) then incr failures);
    ()
  done;
  let observed = float_of_int !failures /. float_of_int trials in
  (* The analytic model uses the stored length (shortened code) and the
     designed capability; the real decoder may do slightly better because
     the true minimum distance can exceed the design bound, so allow a
     generous band. *)
  let stored_bits =
    data_bits + Ecc.Bch.parity_bits code
  in
  let predicted =
    Sim.Special.binomial_tail stored_bits rber
      (Ecc.Bch.capability code)
  in
  checkb
    (Printf.sprintf "observed %.4f vs predicted %.4f" observed predicted)
    true
    (Float.abs (observed -. predicted) < 0.05 +. (0.5 *. predicted))

(* --- Reed-Solomon ------------------------------------------------------ *)

let random_shares rng k len =
  Array.init k (fun _ ->
      Bytes.init len (fun _ -> Char.chr (Sim.Rng.int rng 256)))

let test_rs_systematic_and_verify () =
  let rs = Ecc.Reed_solomon.create ~data_shares:4 ~parity_shares:2 in
  let rng = Sim.Rng.create 12 in
  let data = random_shares rng 4 64 in
  let parity = Ecc.Reed_solomon.encode rs data in
  Alcotest.(check int) "parity count" 2 (Array.length parity);
  let all = Array.append data parity in
  checkb "full set verifies" true (Ecc.Reed_solomon.verify rs all);
  (* flip one byte anywhere: verification fails *)
  Bytes.set all.(5) 3 (Char.chr (Char.code (Bytes.get all.(5) 3) lxor 1));
  checkb "corruption detected" true (not (Ecc.Reed_solomon.verify rs all))

let test_rs_reconstruct_each_share () =
  let rs = Ecc.Reed_solomon.create ~data_shares:4 ~parity_shares:2 in
  let rng = Sim.Rng.create 13 in
  let data = random_shares rng 4 32 in
  let parity = Ecc.Reed_solomon.encode rs data in
  let all = Array.append data parity in
  (* lose any 2 shares; rebuild each from the other 4 *)
  for lost1 = 0 to 5 do
    for lost2 = lost1 + 1 to 5 do
      let survivors =
        List.filter_map
          (fun i -> if i = lost1 || i = lost2 then None else Some (i, all.(i)))
          (List.init 6 Fun.id)
      in
      List.iter
        (fun lost ->
          let rebuilt = Ecc.Reed_solomon.reconstruct rs ~shares:survivors lost in
          checkb
            (Printf.sprintf "share %d rebuilt (lost %d,%d)" lost lost1 lost2)
            true
            (Bytes.equal rebuilt all.(lost)))
        [ lost1; lost2 ]
    done
  done

let test_rs_too_few_shares () =
  let rs = Ecc.Reed_solomon.create ~data_shares:3 ~parity_shares:2 in
  let rng = Sim.Rng.create 14 in
  let data = random_shares rng 3 8 in
  let _ = Ecc.Reed_solomon.encode rs data in
  Alcotest.check_raises "k-1 shares rejected"
    (Invalid_argument "Reed_solomon.reconstruct: need at least k shares")
    (fun () ->
      ignore
        (Ecc.Reed_solomon.reconstruct rs
           ~shares:[ (0, data.(0)); (1, data.(1)) ]
           2))

let test_rs_overhead () =
  let rs = Ecc.Reed_solomon.create ~data_shares:6 ~parity_shares:3 in
  Alcotest.(check (float 1e-9)) "overhead 1.5" 1.5
    (Ecc.Reed_solomon.storage_overhead rs)

let prop_rs_any_k_of_n =
  QCheck.Test.make ~count:50 ~name:"rs reconstructs from any k of n"
    QCheck.(triple (int_range 2 6) (int_range 1 4) small_int)
    (fun (k, m, seed) ->
      let rs = Ecc.Reed_solomon.create ~data_shares:k ~parity_shares:m in
      let rng = Sim.Rng.create (seed + 1) in
      let data = random_shares rng k 16 in
      let parity = Ecc.Reed_solomon.encode rs data in
      let all = Array.append data parity in
      (* pick a random k-subset of surviving shares *)
      let indices = Array.init (k + m) Fun.id in
      Sim.Rng.shuffle rng indices;
      let survivors =
        Array.to_list (Array.sub indices 0 k)
        |> List.map (fun i -> (i, all.(i)))
      in
      (* every share, including survivors, reconstructs correctly *)
      List.for_all
        (fun i ->
          Bytes.equal
            (Ecc.Reed_solomon.reconstruct rs ~shares:survivors i)
            all.(i))
        (List.init (k + m) Fun.id))

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("bitarray basic", `Quick, test_bitarray_basic);
    ("bitarray bounds", `Quick, test_bitarray_bounds);
    ("bitarray string roundtrip", `Quick, test_bitarray_string_roundtrip);
    ("bitarray xor", `Quick, test_bitarray_xor);
    ("bitarray iter_set", `Quick, test_bitarray_iter_set);
    ("bitarray randomize clears padding", `Quick, test_bitarray_randomize_padding);
    ("galois field laws", `Quick, test_field_laws);
    ("galois inverses", `Quick, test_field_inverse);
    ("galois alpha cycle", `Quick, test_field_alpha_cycle);
    ("gf_poly divmod", `Quick, test_poly_divmod);
    ("gf_poly minimal polynomial", `Quick, test_minimal_polynomial_has_root);
    ("bch roundtrips", `Slow, test_bch_roundtrips);
    ("bch detects overload", `Quick, test_bch_detects_overload);
    ("bch k matches generator", `Quick, test_bch_k_matches_generator);
    ("bch shortened zero data", `Quick, test_bch_shortened_zero_data);
    qc prop_bch_roundtrip;
    qc prop_bch_differential;
    ("bch shared core, independent telemetry", `Quick,
     test_bch_shared_core_independent_telemetry);
    ("galois memoized", `Quick, test_galois_memoized);
    ("reliability memo consistent", `Quick,
     test_tolerable_rber_memo_consistent);
    ("code params flash sector", `Quick, test_code_params_flash_sector);
    ("code params invalid", `Quick, test_code_params_invalid);
    ("reliability monotone in rber", `Quick, test_reliability_monotone_in_rber);
    ("reliability threshold fixed point", `Quick,
     test_reliability_tolerable_rber_fixed_point);
    ("reliability grows with spare", `Quick,
     test_reliability_tolerable_rber_grows_with_spare);
    ("reliability page vs codeword", `Quick, test_reliability_page_vs_codeword);
    ("reliability matches live codec", `Slow, test_reliability_matches_live_codec);
    ("rs systematic and verify", `Quick, test_rs_systematic_and_verify);
    ("rs reconstruct each share", `Quick, test_rs_reconstruct_each_share);
    ("rs too few shares", `Quick, test_rs_too_few_shares);
    ("rs overhead", `Quick, test_rs_overhead);
    qc prop_rs_any_k_of_n;
  ]
