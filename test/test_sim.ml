(* Tests for the simulation substrate: RNG, distributions, special
   functions, statistics, event queue and engine. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)

(* --- Rng -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 1 in
  for _ = 1 to 100 do
    checkb "same seed, same stream" true (Sim.Rng.bits64 a = Sim.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1 and b = Sim.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Sim.Rng.bits64 a <> Sim.Rng.bits64 b then differs := true
  done;
  checkb "different seeds diverge" true !differs

let test_rng_copy () =
  let a = Sim.Rng.create 5 in
  ignore (Sim.Rng.bits64 a);
  let b = Sim.Rng.copy a in
  for _ = 1 to 50 do
    checkb "copy replays" true (Sim.Rng.bits64 a = Sim.Rng.bits64 b)
  done

let test_rng_split_independent () =
  let parent = Sim.Rng.create 10 in
  let child1 = Sim.Rng.split parent in
  let child2 = Sim.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.bits64 child1 = Sim.Rng.bits64 child2 then incr same
  done;
  checki "children do not mirror each other" 0 !same

let test_rng_int_bounds () =
  let rng = Sim.Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int rng 7 in
    checkb "0 <= x < 7" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int rng 0))

let test_rng_int_uniformity () =
  let rng = Sim.Rng.create 17 in
  let buckets = Array.make 10 0 in
  let samples = 100_000 in
  for _ = 1 to samples do
    let x = Sim.Rng.int rng 10 in
    buckets.(x) <- buckets.(x) + 1
  done;
  Array.iteri
    (fun i count ->
      let expected = samples / 10 in
      checkb
        (Printf.sprintf "bucket %d within 5%% of uniform" i)
        true
        (abs (count - expected) < expected / 20))
    buckets

let test_rng_chance_extremes () =
  let rng = Sim.Rng.create 4 in
  checkb "p=0 never" false (Sim.Rng.chance rng 0.);
  checkb "p=1 always" true (Sim.Rng.chance rng 1.);
  checkb "p<0 never" false (Sim.Rng.chance rng (-0.5))

let test_rng_shuffle_permutation () =
  let rng = Sim.Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Sim.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 50 Fun.id) sorted

(* --- qcheck: Rng stream laws the parallel layer depends on ------------- *)
(* Fleet determinism rests on exactly these: [create seed] and the
   sequence of [split]s are pure functions of the seed, [copy] replays,
   and sibling streams never collide on a 64-draw prefix. *)

let rng_seed_arb = QCheck.int_range 0 1_000_000

let draws n rng = List.init n (fun _ -> Sim.Rng.bits64 rng)

let prop_rng_seed_deterministic =
  QCheck.Test.make ~count:100 ~name:"rng: same seed, same stream and splits"
    rng_seed_arb (fun seed ->
      let a = Sim.Rng.create seed and b = Sim.Rng.create seed in
      draws 32 a = draws 32 b
      && draws 32 (Sim.Rng.split a) = draws 32 (Sim.Rng.split b)
      && draws 32 a = draws 32 b)

let prop_rng_copy_identical =
  QCheck.Test.make ~count:100 ~name:"rng: copy replays the source sequence"
    QCheck.(pair rng_seed_arb (int_range 0 64))
    (fun (seed, burn) ->
      let a = Sim.Rng.create seed in
      for _ = 1 to burn do
        ignore (Sim.Rng.bits64 a)
      done;
      let b = Sim.Rng.copy a in
      draws 32 a = draws 32 b)

let prop_rng_split_independent =
  QCheck.Test.make ~count:100
    ~name:"rng: split children diverge from parent and each other"
    rng_seed_arb (fun seed ->
      let parent = Sim.Rng.create seed in
      let c1 = Sim.Rng.split parent in
      let c2 = Sim.Rng.split parent in
      let d1 = draws 64 c1 and d2 = draws 64 c2 and dp = draws 64 parent in
      (* Independent 64-bit streams share a whole 64-draw prefix with
         probability ~2^-4096; equality means correlation. *)
      d1 <> d2 && d1 <> dp && d2 <> dp)

(* --- Distributions ---------------------------------------------------- *)

let sample_mean n f =
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int n

let test_dist_exponential_mean () =
  let rng = Sim.Rng.create 21 in
  let mean = sample_mean 50_000 (fun () -> Sim.Dist.exponential rng ~rate:2.) in
  checkf 0.02 "mean 1/rate" 0.5 mean

let test_dist_normal_moments () =
  let rng = Sim.Rng.create 22 in
  let online = Sim.Stats.Online.create () in
  for _ = 1 to 50_000 do
    Sim.Stats.Online.add online (Sim.Dist.normal rng ~mean:3. ~stddev:2.)
  done;
  checkf 0.05 "mean" 3. (Sim.Stats.Online.mean online);
  checkf 0.1 "stddev" 2. (Sim.Stats.Online.stddev online)

let test_dist_lognormal_positive () =
  let rng = Sim.Rng.create 23 in
  for _ = 1 to 1000 do
    checkb "lognormal > 0" true (Sim.Dist.lognormal rng ~mu:0. ~sigma:0.25 > 0.)
  done

let test_dist_poisson_mean () =
  let rng = Sim.Rng.create 24 in
  let small =
    sample_mean 20_000 (fun () ->
        float_of_int (Sim.Dist.poisson rng ~mean:3.5))
  in
  checkf 0.1 "poisson small mean" 3.5 small;
  let large =
    sample_mean 20_000 (fun () ->
        float_of_int (Sim.Dist.poisson rng ~mean:80.))
  in
  checkf 1.0 "poisson large mean" 80. large

let test_dist_binomial_mean () =
  let rng = Sim.Rng.create 25 in
  (* exact regime *)
  let exact =
    sample_mean 20_000 (fun () ->
        float_of_int (Sim.Dist.binomial rng ~n:40 ~p:0.3))
  in
  checkf 0.15 "binomial exact mean" 12. exact;
  (* approximation regime *)
  let approx =
    sample_mean 20_000 (fun () ->
        float_of_int (Sim.Dist.binomial rng ~n:10_000 ~p:0.01))
  in
  checkf 1.5 "binomial approx mean" 100. approx

let test_dist_binomial_extremes () =
  let rng = Sim.Rng.create 26 in
  checki "p=0" 0 (Sim.Dist.binomial rng ~n:100 ~p:0.);
  checki "p=1" 100 (Sim.Dist.binomial rng ~n:100 ~p:1.)

let test_dist_zipf_skew () =
  let rng = Sim.Rng.create 27 in
  let zipf = Sim.Dist.Zipf.create ~n:100 ~theta:1.0 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let r = Sim.Dist.Zipf.sample zipf rng in
    counts.(r) <- counts.(r) + 1
  done;
  checkb "rank 0 hotter than rank 50" true (counts.(0) > 10 * counts.(50));
  (* theta = 0 is uniform *)
  let uniform = Sim.Dist.Zipf.create ~n:10 ~theta:0. in
  let counts = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let r = Sim.Dist.Zipf.sample uniform rng in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "uniform bucket %d" i) true
        (abs (c - 5000) < 500))
    counts

(* --- Special functions ------------------------------------------------ *)

let test_log_gamma_factorials () =
  (* gamma(n+1) = n! *)
  let factorial n =
    let rec go acc i = if i <= 1 then acc else go (acc *. float_of_int i) (i - 1) in
    go 1. n
  in
  List.iter
    (fun n ->
      checkf 1e-9
        (Printf.sprintf "log_gamma %d" n)
        (log (factorial n))
        (Sim.Special.log_gamma (float_of_int (n + 1))))
    [ 1; 2; 5; 10; 20 ]

let test_log_choose () =
  checkf 1e-9 "C(5,2)" (log 10.) (Sim.Special.log_choose 5 2);
  checkf 1e-9 "C(10,0)" 0. (Sim.Special.log_choose 10 0);
  checkf 1e-6 "C(100,50)"
    (log 1.0089134454556417e29)
    (Sim.Special.log_choose 100 50)

let test_betai_reference_values () =
  (* I_x(1,1) = x; I_x(2,1) = x^2 *)
  checkf 1e-12 "I_x(1,1)" 0.37 (Sim.Special.betai 1. 1. 0.37);
  checkf 1e-12 "I_x(2,1)" (0.4 ** 2.) (Sim.Special.betai 2. 1. 0.4);
  checkf 1e-9 "symmetry" 1.
    (Sim.Special.betai 3. 7. 0.2 +. Sim.Special.betai 7. 3. 0.8)

let test_binomial_tail_matches_exact_sum () =
  List.iter
    (fun (n, p, t) ->
      checkf 1e-10
        (Printf.sprintf "tail n=%d p=%g t=%d" n p t)
        (Sim.Special.binomial_tail_exact_sum n p t)
        (Sim.Special.binomial_tail n p t))
    [ (10, 0.3, 4); (100, 0.01, 3); (1000, 0.005, 10); (64, 0.5, 32) ]

let test_binomial_tail_extremes () =
  checkf 0. "t >= n" 0. (Sim.Special.binomial_tail 10 0.5 10);
  checkf 0. "p = 0" 0. (Sim.Special.binomial_tail 10 0. 0);
  checkf 0. "p = 1, t < n" 1. (Sim.Special.binomial_tail 10 1. 5);
  checkf 1e-12 "t = -1 is certain" 1. (Sim.Special.binomial_tail 10 0.3 (-1))

let test_binomial_tail_monotone_in_p () =
  let previous = ref 0. in
  List.iter
    (fun p ->
      let tail = Sim.Special.binomial_tail 10_000 p 50 in
      checkb (Printf.sprintf "monotone at p=%g" p) true (tail >= !previous);
      previous := tail)
    [ 1e-4; 5e-4; 1e-3; 5e-3; 1e-2; 5e-2 ]

let test_solve_monotone () =
  let root =
    Sim.Special.solve_monotone ~f:(fun x -> x *. x) ~target:2. ~lo:0. ~hi:2. ()
  in
  checkf 1e-9 "sqrt 2" (sqrt 2.) root

(* --- Stats ------------------------------------------------------------ *)

let test_online_known_values () =
  let online = Sim.Stats.Online.create () in
  List.iter (Sim.Stats.Online.add online) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checki "count" 8 (Sim.Stats.Online.count online);
  checkf 1e-9 "mean" 5. (Sim.Stats.Online.mean online);
  checkf 1e-9 "variance" (32. /. 7.) (Sim.Stats.Online.variance online);
  checkf 1e-9 "min" 2. (Sim.Stats.Online.min online);
  checkf 1e-9 "max" 9. (Sim.Stats.Online.max online);
  checkf 1e-9 "total" 40. (Sim.Stats.Online.total online)

let test_online_merge () =
  let a = Sim.Stats.Online.create () and b = Sim.Stats.Online.create () in
  let all = Sim.Stats.Online.create () in
  let rng = Sim.Rng.create 31 in
  for i = 1 to 1000 do
    let x = Sim.Rng.unit_float rng *. 10. in
    Sim.Stats.Online.add all x;
    Sim.Stats.Online.add (if i mod 3 = 0 then a else b) x
  done;
  let merged = Sim.Stats.Online.merge a b in
  checki "merged count" 1000 (Sim.Stats.Online.count merged);
  checkf 1e-9 "merged mean" (Sim.Stats.Online.mean all)
    (Sim.Stats.Online.mean merged);
  checkf 1e-6 "merged variance" (Sim.Stats.Online.variance all)
    (Sim.Stats.Online.variance merged)

let test_histogram_percentiles () =
  let hist = Sim.Stats.Histogram.create ~buckets:1000 ~lo:0. ~hi:100. () in
  for i = 1 to 10_000 do
    Sim.Stats.Histogram.add hist (float_of_int (i mod 100))
  done;
  checkf 1.0 "p50" 50. (Sim.Stats.Histogram.percentile hist 0.5);
  checkf 1.5 "p99" 99. (Sim.Stats.Histogram.percentile hist 0.99);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      let empty = Sim.Stats.Histogram.create ~lo:0. ~hi:1. () in
      ignore (Sim.Stats.Histogram.percentile empty 0.5))

let test_histogram_percentile_clamping () =
  (* Out-of-range samples land in the edge buckets, so percentiles of a
     histogram fed only out-of-range data report the edge midpoints. *)
  let hist = Sim.Stats.Histogram.create ~buckets:10 ~lo:0. ~hi:10. () in
  for _ = 1 to 50 do
    Sim.Stats.Histogram.add hist (-100.)
  done;
  for _ = 1 to 50 do
    Sim.Stats.Histogram.add hist 1e9
  done;
  checki "count includes clamped" 100 (Sim.Stats.Histogram.count hist);
  checkf 1e-9 "low tail = first bucket midpoint" 0.5
    (Sim.Stats.Histogram.percentile hist 0.25);
  checkf 1e-9 "high tail = last bucket midpoint" 9.5
    (Sim.Stats.Histogram.percentile hist 0.99);
  (* Rank bounds are inclusive; just outside raises. *)
  ignore (Sim.Stats.Histogram.percentile hist 0.);
  ignore (Sim.Stats.Histogram.percentile hist 1.);
  Alcotest.check_raises "rank above 1"
    (Invalid_argument "Histogram.percentile: rank outside [0,1]") (fun () ->
      ignore (Sim.Stats.Histogram.percentile hist 1.1));
  Alcotest.check_raises "negative rank"
    (Invalid_argument "Histogram.percentile: rank outside [0,1]") (fun () ->
      ignore (Sim.Stats.Histogram.percentile hist (-0.1)))

let test_histogram_singleton () =
  let hist = Sim.Stats.Histogram.create ~buckets:100 ~lo:0. ~hi:100. () in
  Sim.Stats.Histogram.add hist 42.;
  checki "count" 1 (Sim.Stats.Histogram.count hist);
  checkf 1e-9 "mean is the sample" 42. (Sim.Stats.Histogram.mean hist);
  (* Every positive percentile of a single observation is that
     observation's bucket midpoint; rank 0 degenerates to the first
     bucket (its threshold is met before any count accumulates). *)
  List.iter
    (fun rank ->
      checkf 1e-9
        (Printf.sprintf "p%g" (rank *. 100.))
        42.5
        (Sim.Stats.Histogram.percentile hist rank))
    [ 0.001; 0.5; 0.99; 1. ];
  checkf 1e-9 "rank 0 is the first bucket" 0.5
    (Sim.Stats.Histogram.percentile hist 0.)

let test_series_binned () =
  let series = Sim.Stats.Series.create () in
  Sim.Stats.Series.add series ~time:0.1 10.;
  Sim.Stats.Series.add series ~time:0.9 20.;
  Sim.Stats.Series.add series ~time:1.5 30.;
  let binned = Sim.Stats.Series.binned series ~bin:1.0 in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "binned averages"
    [ (0., 15.); (1., 30.) ]
    binned

let test_series_binned_empty_bins () =
  (* Bins with no samples are omitted, not reported as zero: a gap in the
     series must not fabricate data points. *)
  let series = Sim.Stats.Series.create () in
  Sim.Stats.Series.add series ~time:0.5 10.;
  Sim.Stats.Series.add series ~time:5.5 20.;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "gap bins omitted"
    [ (0., 10.); (5., 20.) ]
    (Sim.Stats.Series.binned series ~bin:1.0);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "empty series binned" []
    (Sim.Stats.Series.binned (Sim.Stats.Series.create ()) ~bin:1.0)

let prop_online_merge_matches_combined =
  (* merge a b must behave exactly as if every observation had been fed
     to a single accumulator, for any split of any sample list. *)
  QCheck.Test.make ~count:200 ~name:"online merge = combined accumulator"
    QCheck.(pair (list (float_bound_exclusive 1000.)) small_int)
    (fun (xs, split_seed) ->
      let a = Sim.Stats.Online.create ()
      and b = Sim.Stats.Online.create ()
      and all = Sim.Stats.Online.create () in
      List.iteri
        (fun i x ->
          Sim.Stats.Online.add all x;
          Sim.Stats.Online.add (if (i + split_seed) mod 2 = 0 then a else b) x)
        xs;
      let merged = Sim.Stats.Online.merge a b in
      let feq x y =
        (Float.is_nan x && Float.is_nan y)
        || Float.abs (x -. y) <= 1e-6 *. Float.max 1. (Float.abs y)
      in
      Sim.Stats.Online.count merged = Sim.Stats.Online.count all
      && feq (Sim.Stats.Online.mean merged) (Sim.Stats.Online.mean all)
      && feq (Sim.Stats.Online.variance merged)
           (Sim.Stats.Online.variance all)
      && feq (Sim.Stats.Online.total merged) (Sim.Stats.Online.total all)
      && Sim.Stats.Online.min merged = Sim.Stats.Online.min all
      && Sim.Stats.Online.max merged = Sim.Stats.Online.max all)

(* --- Event queue and engine ------------------------------------------- *)

let test_event_queue_ordering () =
  let q = Sim.Event_queue.create () in
  Sim.Event_queue.push q ~time:3. "c";
  Sim.Event_queue.push q ~time:1. "a";
  Sim.Event_queue.push q ~time:2. "b";
  let pop () =
    match Sim.Event_queue.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "queue empty"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "ordered" [ "a"; "b"; "c" ]
    [ first; second; third ];
  checkb "now empty" true (Sim.Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  List.iter (fun v -> Sim.Event_queue.push q ~time:1. v) [ 1; 2; 3; 4; 5 ];
  let order = List.init 5 (fun _ ->
      match Sim.Event_queue.pop q with
      | Some (_, v) -> v
      | None -> -1)
  in
  Alcotest.(check (list int)) "FIFO on ties" [ 1; 2; 3; 4; 5 ] order

let test_event_queue_random_order () =
  let q = Sim.Event_queue.create () in
  let rng = Sim.Rng.create 41 in
  for _ = 1 to 1000 do
    Sim.Event_queue.push q ~time:(Sim.Rng.unit_float rng) ()
  done;
  let previous = ref neg_infinity in
  let sorted = ref true in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (time, ()) ->
        if time < !previous then sorted := false;
        previous := time;
        drain ()
  in
  drain ();
  checkb "pops in time order" true !sorted

let test_engine_schedule_and_run () =
  let engine = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule engine ~after:2. (fun _ -> log := "second" :: !log);
  Sim.Engine.schedule engine ~after:1. (fun e ->
      log := "first" :: !log;
      Sim.Engine.schedule e ~after:0.5 (fun _ -> log := "nested" :: !log));
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "execution order"
    [ "first"; "nested"; "second" ]
    (List.rev !log);
  checkf 1e-9 "clock at last event" 2. (Sim.Engine.now engine)

let test_engine_until () =
  let engine = Sim.Engine.create () in
  let count = ref 0 in
  let rec tick e =
    incr count;
    Sim.Engine.schedule e ~after:1. tick
  in
  Sim.Engine.schedule engine ~after:1. tick;
  Sim.Engine.run ~until:10.5 engine;
  checki "ten ticks before 10.5" 10 !count;
  checkf 1e-9 "clock advanced to until" 10.5 (Sim.Engine.now engine);
  checki "next tick still pending" 1 (Sim.Engine.pending engine)

let test_engine_rejects_past () =
  let engine = Sim.Engine.create () in
  Sim.Engine.schedule engine ~after:5. (fun e ->
      Alcotest.check_raises "past scheduling"
        (Invalid_argument "Engine.schedule_at: time is in the past")
        (fun () -> Sim.Engine.schedule_at e ~time:1. (fun _ -> ())));
  Sim.Engine.run engine

let suite =
  [
    ("rng deterministic", `Quick, test_rng_deterministic);
    ("rng seed sensitivity", `Quick, test_rng_seed_sensitivity);
    ("rng copy", `Quick, test_rng_copy);
    ("rng split independence", `Quick, test_rng_split_independent);
    ("rng int bounds", `Quick, test_rng_int_bounds);
    ("rng int uniformity", `Slow, test_rng_int_uniformity);
    ("rng chance extremes", `Quick, test_rng_chance_extremes);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    QCheck_alcotest.to_alcotest prop_rng_seed_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_copy_identical;
    QCheck_alcotest.to_alcotest prop_rng_split_independent;
    ("dist exponential mean", `Slow, test_dist_exponential_mean);
    ("dist normal moments", `Slow, test_dist_normal_moments);
    ("dist lognormal positive", `Quick, test_dist_lognormal_positive);
    ("dist poisson mean", `Slow, test_dist_poisson_mean);
    ("dist binomial mean", `Slow, test_dist_binomial_mean);
    ("dist binomial extremes", `Quick, test_dist_binomial_extremes);
    ("dist zipf skew", `Slow, test_dist_zipf_skew);
    ("special log_gamma factorials", `Quick, test_log_gamma_factorials);
    ("special log_choose", `Quick, test_log_choose);
    ("special betai reference", `Quick, test_betai_reference_values);
    ("special binomial tail vs exact", `Quick,
     test_binomial_tail_matches_exact_sum);
    ("special binomial tail extremes", `Quick, test_binomial_tail_extremes);
    ("special binomial tail monotone", `Quick,
     test_binomial_tail_monotone_in_p);
    ("special solve_monotone", `Quick, test_solve_monotone);
    ("stats online known values", `Quick, test_online_known_values);
    ("stats online merge", `Quick, test_online_merge);
    ("stats histogram percentiles", `Quick, test_histogram_percentiles);
    ("stats histogram percentile clamping", `Quick,
     test_histogram_percentile_clamping);
    ("stats histogram singleton", `Quick, test_histogram_singleton);
    ("stats series binned", `Quick, test_series_binned);
    ("stats series binned empty bins", `Quick, test_series_binned_empty_bins);
    QCheck_alcotest.to_alcotest prop_online_merge_matches_combined;
    ("event queue ordering", `Quick, test_event_queue_ordering);
    ("event queue fifo ties", `Quick, test_event_queue_fifo_ties);
    ("event queue random order", `Quick, test_event_queue_random_order);
    ("engine schedule and run", `Quick, test_engine_schedule_and_run);
    ("engine until", `Quick, test_engine_until);
    ("engine rejects past", `Quick, test_engine_rejects_past);
  ]
