(* Tests for the flash substrate: geometry arithmetic, the RBER wear
   model, the chip simulator's physics rules, and the latency model. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)

let small_geometry =
  Flash.Geometry.create ~pages_per_block:8 ~blocks:4 ()

(* --- Geometry ---------------------------------------------------------- *)

let test_geometry_defaults () =
  let g = small_geometry in
  checki "opage bytes" 4096 g.Flash.Geometry.opage_bytes;
  checki "opages per fpage" 4 g.Flash.Geometry.opages_per_fpage;
  checki "spare" 2048 g.Flash.Geometry.spare_bytes;
  checki "fpage data bytes" 16384 (Flash.Geometry.fpage_data_bytes g);
  checki "fpages" 32 (Flash.Geometry.fpages g);
  checki "total opages" 128 (Flash.Geometry.total_opages g);
  checki "physical bytes" (32 * 16384) (Flash.Geometry.physical_data_bytes g);
  checki "codewords per fpage" 8 (Flash.Geometry.codewords_per_fpage g)

let test_geometry_invalid () =
  Alcotest.check_raises "zero blocks"
    (Invalid_argument "Geometry.create: blocks must be > 0") (fun () ->
      ignore (Flash.Geometry.create ~pages_per_block:4 ~blocks:0 ()))

(* --- RBER model -------------------------------------------------------- *)

let test_rber_monotone_in_pec () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:3000 ()
  in
  let previous = ref 0. in
  List.iter
    (fun pec ->
      let r = Flash.Rber_model.rber model ~pec ~strength:1. in
      checkb (Printf.sprintf "rber grows at pec %d" pec) true (r >= !previous);
      previous := r)
    [ 0; 100; 500; 1000; 2000; 3000; 5000 ]

let test_rber_calibration_point () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:3000 ()
  in
  checkf 1e-12 "hits the target" 3e-3
    (Flash.Rber_model.rber model ~pec:3000 ~strength:1.)

let test_rber_inverse () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:3000 ()
  in
  List.iter
    (fun pec ->
      let r = Flash.Rber_model.rber model ~pec ~strength:1.3 in
      let recovered = Flash.Rber_model.pec_at model ~rber:r ~strength:1.3 in
      checkf 0.5 (Printf.sprintf "inverse at pec %d" pec) (float_of_int pec)
        recovered)
    [ 500; 1500; 3000; 6000 ]

let test_rber_strength_scales () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:3000 ()
  in
  let weak = Flash.Rber_model.rber model ~pec:2000 ~strength:2. in
  let strong = Flash.Rber_model.rber model ~pec:2000 ~strength:0.5 in
  checkb "weak pages err more" true (weak > strong)

let test_rber_strength_distribution () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:3000 ()
  in
  let rng = Sim.Rng.create 5 in
  let online = Sim.Stats.Online.create () in
  for _ = 1 to 10_000 do
    Sim.Stats.Online.add online
      (log (Flash.Rber_model.sample_strength model rng))
  done;
  (* Lognormal with mu=0: log has mean 0, stddev = sigma. *)
  checkf 0.02 "median 1" 0. (Sim.Stats.Online.mean online);
  checkf 0.02 "sigma" Flash.Rber_model.default_strength_sigma
    (Sim.Stats.Online.stddev online)

(* --- Chip --------------------------------------------------------------- *)

let make_chip ?(seed = 1) () =
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:100 ()
  in
  Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry:small_geometry ~model
    ()

let test_chip_program_read_roundtrip () =
  let chip = make_chip () in
  let contents = [| Some 11; Some 22; None; Some 44 |] in
  Flash.Chip.program chip ~block:0 ~page:3 contents;
  (match Flash.Chip.read chip ~block:0 ~page:3 with
  | Flash.Chip.Programmed slots ->
      Alcotest.(check (array (option int))) "slots back" contents slots
  | Flash.Chip.Free -> Alcotest.fail "expected programmed");
  Alcotest.(check (option int)) "slot read" (Some 44)
    (Flash.Chip.read_slot chip ~block:0 ~page:3 ~slot:3);
  Alcotest.(check (option int)) "ecc slot reads None" None
    (Flash.Chip.read_slot chip ~block:0 ~page:3 ~slot:2)

let test_chip_program_once () =
  let chip = make_chip () in
  let contents = [| Some 1; Some 2; Some 3; Some 4 |] in
  Flash.Chip.program chip ~block:1 ~page:0 contents;
  Alcotest.check_raises "double program"
    (Invalid_argument "Chip.program: page already programmed (erase first)")
    (fun () -> Flash.Chip.program chip ~block:1 ~page:0 contents)

let test_chip_erase_frees_and_wears () =
  let chip = make_chip () in
  let contents = [| Some 1; Some 2; Some 3; Some 4 |] in
  Flash.Chip.program chip ~block:2 ~page:5 contents;
  checki "pec 0" 0 (Flash.Chip.pec chip ~block:2);
  Flash.Chip.erase chip ~block:2;
  checki "pec 1" 1 (Flash.Chip.pec chip ~block:2);
  checkb "page free again" true (Flash.Chip.is_free chip ~block:2 ~page:5);
  (* reprogram allowed *)
  Flash.Chip.program chip ~block:2 ~page:5 contents

let test_chip_pec_min_incremental () =
  (* The incrementally maintained fleet minimum must equal a brute-force
     recount after every erase, under a skewed random erase pattern. *)
  let rng = Sim.Rng.create 31 in
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1000 ()
  in
  let chip = Flash.Chip.create ~rng ~geometry:small_geometry ~model () in
  let blocks = small_geometry.Flash.Geometry.blocks in
  checki "fresh min" 0 (Flash.Chip.pec_min chip);
  for step = 1 to 500 do
    (* squaring skews toward low blocks so some blocks lag far behind *)
    let r = Sim.Rng.int rng (blocks * blocks) in
    let block = r * r / (blocks * blocks * blocks) mod blocks in
    Flash.Chip.erase chip ~block;
    let brute = ref max_int in
    for b = 0 to blocks - 1 do
      brute := Stdlib.min !brute (Flash.Chip.pec chip ~block:b)
    done;
    checki (Printf.sprintf "pec_min at step %d" step) !brute
      (Flash.Chip.pec_min chip)
  done

let test_chip_rber_tracks_wear () =
  let chip = make_chip () in
  let before = Flash.Chip.rber chip ~block:0 ~page:0 in
  for _ = 1 to 50 do
    Flash.Chip.erase chip ~block:0
  done;
  let after = Flash.Chip.rber chip ~block:0 ~page:0 in
  checkb "wear raises rber" true (after > before);
  checkf 1e-15 "lookahead equals rber at pec+1"
    (Flash.Rber_model.rber (Flash.Chip.model chip) ~pec:51
       ~strength:(Flash.Chip.strength chip ~block:0 ~page:0))
    (Flash.Chip.rber_after_next_erase chip ~block:0 ~page:0)

let test_chip_page_variance () =
  let chip = make_chip () in
  (* Two different pages should essentially never share a strength. *)
  let s1 = Flash.Chip.strength chip ~block:0 ~page:0 in
  let s2 = Flash.Chip.strength chip ~block:0 ~page:1 in
  checkb "distinct strengths" true (s1 <> s2)

let test_chip_counters () =
  let chip = make_chip () in
  let contents = [| Some 1; None; None; None |] in
  Flash.Chip.program chip ~block:0 ~page:0 contents;
  ignore (Flash.Chip.read chip ~block:0 ~page:0);
  Flash.Chip.erase chip ~block:0;
  checki "programs" 1 (Flash.Chip.programs chip);
  checki "reads" 1 (Flash.Chip.reads chip);
  checki "erases" 1 (Flash.Chip.erases chip)

let test_chip_bounds () =
  let chip = make_chip () in
  Alcotest.check_raises "block range" (Invalid_argument "Chip: block out of range")
    (fun () -> ignore (Flash.Chip.pec chip ~block:99));
  Alcotest.check_raises "page range" (Invalid_argument "Chip: page out of range")
    (fun () -> ignore (Flash.Chip.rber chip ~block:0 ~page:99))

(* --- Read disturb -------------------------------------------------------- *)

let disturb_model =
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:100
    ~read_disturb_per_read:1e-5 ()

let test_read_disturb_accumulates () =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 2) ~geometry:small_geometry
      ~model:disturb_model ()
  in
  Flash.Chip.program chip ~block:0 ~page:0 [| Some 1; Some 2; Some 3; Some 4 |];
  let before = Flash.Chip.rber chip ~block:0 ~page:0 in
  for _ = 1 to 1000 do
    ignore (Flash.Chip.read_slot chip ~block:0 ~page:0 ~slot:0)
  done;
  checki "reads counted" 1000 (Flash.Chip.reads_since_erase chip ~block:0 ~page:0);
  let after = Flash.Chip.rber chip ~block:0 ~page:0 in
  checkb "disturb raised rber" true (after > before);
  (* disturb scales with the page strength times the coefficient *)
  let strength = Flash.Chip.strength chip ~block:0 ~page:0 in
  checkf 1e-12 "disturb magnitude" (strength *. 1e-5 *. 1000.) (after -. before)

let test_read_disturb_cleared_by_erase () =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 3) ~geometry:small_geometry
      ~model:disturb_model ()
  in
  Flash.Chip.program chip ~block:1 ~page:0 [| Some 1; None; None; None |];
  for _ = 1 to 500 do
    ignore (Flash.Chip.read chip ~block:1 ~page:0)
  done;
  Flash.Chip.erase chip ~block:1;
  checki "counter reset" 0 (Flash.Chip.reads_since_erase chip ~block:1 ~page:0);
  (* lookahead rber never includes disturb *)
  checkf 1e-15 "lookahead is wear-only"
    (Flash.Rber_model.rber (Flash.Chip.model chip) ~pec:2
       ~strength:(Flash.Chip.strength chip ~block:1 ~page:0))
    (Flash.Chip.rber_after_next_erase chip ~block:1 ~page:0)

(* --- packed representation edge cases ----------------------------------- *)

let test_chip_reserved_payload_rejected () =
  (* The packed payload array reserves [min_int] as its None sentinel, so
     programming it must be refused before any slot is written. *)
  let chip = make_chip () in
  Alcotest.check_raises "min_int payload"
    (Invalid_argument "Chip.program: payload min_int is reserved") (fun () ->
      Flash.Chip.program chip ~block:0 ~page:0
        [| Some min_int; None; None; None |]);
  checkb "page still free after rejection" true
    (Flash.Chip.is_free chip ~block:0 ~page:0);
  (* Extreme but legal payloads survive the packed roundtrip. *)
  Flash.Chip.program chip ~block:0 ~page:1
    [| Some max_int; Some (min_int + 1); Some 0; None |];
  Alcotest.(check (option int)) "max_int roundtrips" (Some max_int)
    (Flash.Chip.read_slot chip ~block:0 ~page:1 ~slot:0);
  Alcotest.(check (option int)) "min_int+1 roundtrips" (Some (min_int + 1))
    (Flash.Chip.read_slot chip ~block:0 ~page:1 ~slot:1)

let test_chip_stale_payloads_hidden_after_erase () =
  (* Erase flips the programmed bit but leaves old payload words in place;
     reads must report Free, and a re-program must fully replace them. *)
  let chip = make_chip () in
  Flash.Chip.program chip ~block:1 ~page:2 [| Some 7; Some 8; Some 9; None |];
  Flash.Chip.erase chip ~block:1;
  (match Flash.Chip.read chip ~block:1 ~page:2 with
  | Flash.Chip.Free -> ()
  | Flash.Chip.Programmed _ -> Alcotest.fail "stale payload leaked");
  Alcotest.check_raises "slot read on erased page rejected"
    (Invalid_argument "Chip.read_slot: page is erased") (fun () ->
      ignore (Flash.Chip.read_slot chip ~block:1 ~page:2 ~slot:0));
  Flash.Chip.program chip ~block:1 ~page:2 [| None; Some 5; None; None |];
  (match Flash.Chip.read chip ~block:1 ~page:2 with
  | Flash.Chip.Programmed slots ->
      Alcotest.(check (array (option int)))
        "old slots fully replaced" [| None; Some 5; None; None |] slots
  | Flash.Chip.Free -> Alcotest.fail "expected programmed")

let test_chip_faults_cleared_by_erase () =
  (* Injected faults live in a sparse side table keyed by flat page index;
     erasing the block must drop the whole cell, not just one field. *)
  let chip = make_chip () in
  Flash.Chip.program chip ~block:3 ~page:0 [| Some 1; None; None; None |];
  Flash.Chip.inject chip ~block:3 ~page:0 (Flash.Chip.Transient_rber 0.1);
  Flash.Chip.inject chip ~block:3 ~page:0 (Flash.Chip.Sticky_rber 0.2);
  Flash.Chip.inject chip ~block:3 ~page:0 (Flash.Chip.Silent_corruption 0b101);
  checki "three injections counted" 3 (Flash.Chip.faults_injected chip);
  checkf 1e-12 "sticky visible" 0.2
    (Flash.Chip.sticky_rber chip ~block:3 ~page:0);
  Alcotest.(check (option int)) "corruption flips payload bits" (Some 4)
    (Flash.Chip.read_slot chip ~block:3 ~page:0 ~slot:0);
  Flash.Chip.erase chip ~block:3;
  checkf 1e-12 "sticky gone after erase" 0.
    (Flash.Chip.sticky_rber chip ~block:3 ~page:0);
  checkf 1e-12 "transient gone after erase" 0.
    (Flash.Chip.take_transient chip ~block:3 ~page:0);
  Flash.Chip.program chip ~block:3 ~page:0 [| Some 1; None; None; None |];
  Alcotest.(check (option int)) "corruption gone after erase" (Some 1)
    (Flash.Chip.read_slot chip ~block:3 ~page:0 ~slot:0);
  checki "injection counter survives erase" 3
    (Flash.Chip.faults_injected chip)

let test_read_disturb_off_by_default () =
  let model = Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:100 () in
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 4) ~geometry:small_geometry ~model ()
  in
  Flash.Chip.program chip ~block:0 ~page:0 [| Some 1; None; None; None |];
  let before = Flash.Chip.rber chip ~block:0 ~page:0 in
  for _ = 1 to 1000 do
    ignore (Flash.Chip.read chip ~block:0 ~page:0)
  done;
  checkf 0. "no disturb by default" before (Flash.Chip.rber chip ~block:0 ~page:0)

(* --- Latency ------------------------------------------------------------ *)

let test_latency_retries_grow_with_margin () =
  checki "fresh page no retries" 0 (Flash.Latency.expected_retries ~margin:0.1);
  checki "half margin" 1 (Flash.Latency.expected_retries ~margin:0.7);
  checki "near threshold" 1 (Flash.Latency.expected_retries ~margin:0.99);
  checkb "beyond threshold retries more" true
    (Flash.Latency.expected_retries ~margin:1.4 >= 2);
  checki "capped" 4 (Flash.Latency.expected_retries ~margin:99.)

let test_latency_read_composition () =
  let l = Flash.Latency.default in
  let base =
    Flash.Latency.fpage_read_us l ~data_kib:16. ~raw_errors:0. ~retries:0
  in
  let retried =
    Flash.Latency.fpage_read_us l ~data_kib:16. ~raw_errors:0. ~retries:2
  in
  checkf 1e-9 "two retries add 2x retry_us" (2. *. l.Flash.Latency.retry_us)
    (retried -. base);
  let small =
    Flash.Latency.fpage_read_us l ~data_kib:4. ~raw_errors:0. ~retries:0
  in
  checkb "less data transfers faster" true (small < base)

(* --- Service (queueing) --------------------------------------------------- *)

let service_fixture () =
  let engine = Sim.Engine.create () in
  let service =
    Flash.Service.create ~engine
      { Flash.Service.default_config with Flash.Service.channels = 2;
        dies_per_channel = 2 }
  in
  (engine, service)

let page ~die ~sense ~transfer =
  { Flash.Service.die_hint = die; sense_us = sense; transfer_us = transfer }

let test_service_single_page_latency () =
  let engine, service = service_fixture () in
  let observed = ref nan in
  Flash.Service.submit service
    ~pages:[ page ~die:0 ~sense:60. ~transfer:4. ]
    ~on_complete:(fun ~latency_us -> observed := latency_us);
  Sim.Engine.run engine;
  checkf 1e-9 "sense + transfer" 64. !observed

let test_service_same_die_serializes () =
  let engine, service = service_fixture () in
  let observed = ref nan in
  (* two pages on one die: second sense waits for the first *)
  Flash.Service.submit service
    ~pages:[ page ~die:0 ~sense:60. ~transfer:4.;
             page ~die:0 ~sense:60. ~transfer:4. ]
    ~on_complete:(fun ~latency_us -> observed := latency_us);
  Sim.Engine.run engine;
  checkf 1e-9 "serialized senses" 124. !observed

let test_service_different_dies_overlap () =
  let engine, service = service_fixture () in
  let observed = ref nan in
  (* dies 0 and 2 sit on different channels: full overlap *)
  Flash.Service.submit service
    ~pages:[ page ~die:0 ~sense:60. ~transfer:4.;
             page ~die:2 ~sense:60. ~transfer:4. ]
    ~on_complete:(fun ~latency_us -> observed := latency_us);
  Sim.Engine.run engine;
  checkf 1e-9 "parallel senses" 64. !observed

let test_service_channel_contention () =
  let engine, service = service_fixture () in
  let observed = ref nan in
  (* dies 0 and 1 share channel 0: senses overlap, transfers serialize *)
  Flash.Service.submit service
    ~pages:[ page ~die:0 ~sense:60. ~transfer:4.;
             page ~die:1 ~sense:60. ~transfer:4. ]
    ~on_complete:(fun ~latency_us -> observed := latency_us);
  Sim.Engine.run engine;
  checkf 1e-9 "transfers share the channel" 68. !observed

let test_service_closed_loop_throughput () =
  (* With 4 dies and QD 4, four independent single-page requests complete
     in one sense time each, fully overlapped. *)
  let engine, service = service_fixture () in
  let completed = ref 0 in
  for die = 0 to 3 do
    Flash.Service.submit service
      ~pages:[ page ~die ~sense:60. ~transfer:1. ]
      ~on_complete:(fun ~latency_us:_ -> incr completed)
  done;
  Sim.Engine.run engine;
  checki "all done" 4 !completed;
  (* dies on channel 0 finish at 61 and 62; clock ends at the last one *)
  checkb "overlapped" true (Sim.Engine.now engine < 70.);
  checkb "die was busy" true (Flash.Service.busy_fraction service ~die:0 > 0.5)

let test_service_empty_request () =
  let _, service = service_fixture () in
  Alcotest.check_raises "empty" (Invalid_argument "Service.submit: empty request")
    (fun () ->
      Flash.Service.submit service ~pages:[]
        ~on_complete:(fun ~latency_us:_ -> ()))

let suite =
  [
    ("geometry defaults", `Quick, test_geometry_defaults);
    ("geometry invalid", `Quick, test_geometry_invalid);
    ("rber monotone in pec", `Quick, test_rber_monotone_in_pec);
    ("rber calibration point", `Quick, test_rber_calibration_point);
    ("rber inverse", `Quick, test_rber_inverse);
    ("rber strength scales", `Quick, test_rber_strength_scales);
    ("rber strength distribution", `Slow, test_rber_strength_distribution);
    ("chip program/read roundtrip", `Quick, test_chip_program_read_roundtrip);
    ("chip program once", `Quick, test_chip_program_once);
    ("chip erase frees and wears", `Quick, test_chip_erase_frees_and_wears);
    ("chip pec_min incremental", `Quick, test_chip_pec_min_incremental);
    ("chip rber tracks wear", `Quick, test_chip_rber_tracks_wear);
    ("chip page variance", `Quick, test_chip_page_variance);
    ("chip counters", `Quick, test_chip_counters);
    ("chip bounds", `Quick, test_chip_bounds);
    ("read disturb accumulates", `Quick, test_read_disturb_accumulates);
    ("read disturb cleared by erase", `Quick, test_read_disturb_cleared_by_erase);
    ("read disturb off by default", `Quick, test_read_disturb_off_by_default);
    ("chip reserved payload rejected", `Quick,
     test_chip_reserved_payload_rejected);
    ("chip stale payloads hidden after erase", `Quick,
     test_chip_stale_payloads_hidden_after_erase);
    ("chip faults cleared by erase", `Quick, test_chip_faults_cleared_by_erase);
    ("latency retries grow", `Quick, test_latency_retries_grow_with_margin);
    ("latency read composition", `Quick, test_latency_read_composition);
    ("service single page latency", `Quick, test_service_single_page_latency);
    ("service same die serializes", `Quick, test_service_same_die_serializes);
    ("service different dies overlap", `Quick,
     test_service_different_dies_overlap);
    ("service channel contention", `Quick, test_service_channel_contention);
    ("service closed loop", `Quick, test_service_closed_loop_throughput);
    ("service empty request", `Quick, test_service_empty_request);
  ]
