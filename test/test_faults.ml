(* Tests for the fault-injection engine: plan grammar, injector
   determinism, chip-level fault semantics, and the verdict checker's
   ability to actually catch violations. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()

let gentle_model =
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()

(* --- Plan ----------------------------------------------------------------- *)

let test_plan_roundtrip () =
  List.iter
    (fun (name, plan) ->
      match Faults.Plan.parse (Faults.Plan.to_string plan) with
      | Ok reparsed ->
          checkb
            (Printf.sprintf "preset %s roundtrips" name)
            true (reparsed = plan)
      | Error msg -> Alcotest.failf "preset %s: %s" name msg)
    Faults.Plan.presets

let test_plan_parse_spec_list () =
  match Faults.Plan.parse "transient=0.1@0.2,corr@40:3,crash@90" with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
      checkb "parsed spec list" true
        (plan
        = [
            Faults.Plan.Transient_flips { per_step = 0.1; extra_rber = 0.2 };
            Faults.Plan.Correlated_failure { at_step = 40; blocks = 3 };
            Faults.Plan.Power_loss { at_step = 90 };
          ])

let test_plan_rejects_garbage () =
  List.iter
    (fun s ->
      match Faults.Plan.parse s with
      | Ok _ -> Alcotest.failf "parse accepted %S" s
      | Error _ -> ())
    [ ""; "bogus"; "transient=2"; "sticky=-0.1"; "corr@-1:3"; "corr@10:0";
      "crash@"; "transient=0.1,junk" ]

(* --- Injector ------------------------------------------------------------- *)

let collect_actions seed steps =
  let inj =
    Faults.Injector.create ~rng:(Sim.Rng.create seed)
      (List.assoc "default" Faults.Plan.presets)
  in
  let actions = ref [] in
  for step = 0 to steps - 1 do
    actions := Faults.Injector.step inj ~geometry ~step :: !actions
  done;
  (List.rev !actions, Faults.Injector.injected inj, Faults.Injector.total inj)

let test_injector_deterministic () =
  let a1, census1, total1 = collect_actions 5 900 in
  let a2, census2, total2 = collect_actions 5 900 in
  checkb "same actions" true (a1 = a2);
  checkb "same census" true (census1 = census2);
  checki "same total" total1 total2;
  let a3, _, _ = collect_actions 6 900 in
  checkb "different seed diverges" true (a1 <> a3)

let test_injector_census_counts_actions () =
  let actions, census, total = collect_actions 9 900 in
  checki "census sums to total" total
    (List.fold_left (fun acc (_, n) -> acc + n) 0 census);
  let flat = List.concat actions in
  (* The default plan schedules one kill and one crash inside 900 steps. *)
  checki "one kill" 1
    (List.length
       (List.filter
          (function Faults.Injector.Kill_device _ -> true | _ -> false)
          flat));
  checki "one crash" 1
    (List.length
       (List.filter
          (function Faults.Injector.Power_cut -> true | _ -> false)
          flat));
  List.iter
    (function
      | Faults.Injector.Inject { block; page; _ } ->
          checkb "block in range" true (block >= 0 && block < 16);
          checkb "page in range" true (page >= 0 && page < 8)
      | _ -> ())
    flat

(* --- Chip fault semantics -------------------------------------------------- *)

let make_chip seed =
  Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model:gentle_model ()

let test_chip_transient_consumed_once () =
  let chip = make_chip 3 in
  let base = Flash.Chip.rber chip ~block:1 ~page:2 in
  Flash.Chip.inject chip ~block:1 ~page:2 (Flash.Chip.Transient_rber 0.25);
  checkb "rber raised" true (Flash.Chip.rber chip ~block:1 ~page:2 > base +. 0.2);
  Alcotest.(check (float 1e-9))
    "take returns the spike" 0.25
    (Flash.Chip.take_transient chip ~block:1 ~page:2);
  Alcotest.(check (float 1e-9))
    "second take sees nothing" 0.
    (Flash.Chip.take_transient chip ~block:1 ~page:2);
  Alcotest.(check (float 1e-9)) "rber back to base" base
    (Flash.Chip.rber chip ~block:1 ~page:2)

let test_chip_sticky_until_erase () =
  let chip = make_chip 4 in
  let base = Flash.Chip.rber chip ~block:2 ~page:0 in
  Flash.Chip.inject chip ~block:2 ~page:0 (Flash.Chip.Sticky_rber 0.5);
  ignore (Flash.Chip.take_transient chip ~block:2 ~page:0);
  checkb "sticky survives take_transient" true
    (Flash.Chip.rber chip ~block:2 ~page:0 > base +. 0.4);
  Alcotest.(check (float 1e-9))
    "sticky_rber reads it" 0.5
    (Flash.Chip.sticky_rber chip ~block:2 ~page:0);
  Flash.Chip.erase chip ~block:2;
  Alcotest.(check (float 1e-9))
    "erase clears it" 0.
    (Flash.Chip.sticky_rber chip ~block:2 ~page:0)

let test_chip_silent_corruption_xor () =
  let chip = make_chip 5 in
  Flash.Chip.program chip ~block:0 ~page:0
    [| Some 10; Some 20; Some 30; Some 40 |];
  Flash.Chip.inject chip ~block:0 ~page:0 (Flash.Chip.Silent_corruption 0xFF);
  (match Flash.Chip.read chip ~block:0 ~page:0 with
  | Flash.Chip.Programmed [| Some a; _; _; _ |] ->
      checki "payload flipped" (10 lxor 0xFF) a
  | _ -> Alcotest.fail "unexpected page shape");
  (* XOR is an involution: the same mask twice cancels out. *)
  Flash.Chip.inject chip ~block:0 ~page:0 (Flash.Chip.Silent_corruption 0xFF);
  (match Flash.Chip.read_slot chip ~block:0 ~page:0 ~slot:1 with
  | Some b -> checki "mask cancelled" 20 b
  | None -> Alcotest.fail "slot vanished");
  checki "injections counted" 2 (Flash.Chip.faults_injected chip)

let test_chip_inject_validates () =
  let chip = make_chip 6 in
  Alcotest.check_raises "negative rber rejected"
    (Invalid_argument "Chip.inject: negative transient rber") (fun () ->
      Flash.Chip.inject chip ~block:0 ~page:0 (Flash.Chip.Transient_rber (-1.)));
  Alcotest.check_raises "zero mask rejected"
    (Invalid_argument "Chip.inject: zero corruption mask") (fun () ->
      Flash.Chip.inject chip ~block:0 ~page:0 (Flash.Chip.Silent_corruption 0))

(* --- Verdict -------------------------------------------------------------- *)

let make_engine seed =
  let chip = make_chip seed in
  let policy = Ftl.Policy.always_fresh ~opages_per_fpage:4 in
  Ftl.Engine.create ~chip
    ~rng:(Sim.Rng.create (seed + 1))
    ~policy ~logical_capacity:128 ()

let test_verdict_passes_clean_engine () =
  let engine = make_engine 7 in
  let acked = Hashtbl.create 16 and trimmed = Hashtbl.create 16 in
  for logical = 0 to 40 do
    match Ftl.Engine.write engine ~logical ~payload:(logical * 7) with
    | Ok () -> Hashtbl.replace acked logical (logical * 7)
    | Error `No_space -> Alcotest.fail "no space"
  done;
  Ftl.Engine.discard engine ~logical:3;
  Hashtbl.remove acked 3;
  Hashtbl.replace trimmed 3 ();
  let verdict = Faults.Verdict.check_engine ~engine ~acked ~trimmed in
  checkb
    (Format.asprintf "clean engine passes: %a" Faults.Verdict.pp verdict)
    true
    (Faults.Verdict.all_ok verdict)

let test_verdict_catches_lost_write () =
  let engine = make_engine 8 in
  let acked = Hashtbl.create 4 and trimmed = Hashtbl.create 4 in
  (* Claim an ack the engine never saw: the checker must flag the loss. *)
  Hashtbl.replace acked 5 55;
  checkb "lost write caught" false
    (Faults.Verdict.all_ok (Faults.Verdict.check_engine ~engine ~acked ~trimmed))

let test_verdict_catches_resurrection () =
  let engine = make_engine 9 in
  let acked = Hashtbl.create 4 and trimmed = Hashtbl.create 4 in
  (match Ftl.Engine.write engine ~logical:2 ~payload:9 with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "no space");
  (* Pretend LBA 2 was trimmed: its mapping must read as a resurrection. *)
  Hashtbl.replace trimmed 2 ();
  checkb "resurrection caught" false
    (Faults.Verdict.all_ok (Faults.Verdict.check_engine ~engine ~acked ~trimmed))

let test_monotone_tracker () =
  let m = Faults.Verdict.Monotone.create () in
  checki "no observations, no checks" 0
    (List.length (Faults.Verdict.Monotone.checks m));
  List.iter
    (fun v -> Faults.Verdict.Monotone.observe m ~name:"up" v)
    [ 0; 1; 1; 5 ];
  List.iter
    (fun v -> Faults.Verdict.Monotone.observe m ~name:"down" v)
    [ 3; 2; 2; 4; 1 ];
  match Faults.Verdict.Monotone.checks m with
  | [ down; up ] ->
      checkb "sorted by name" true
        (down.Faults.Verdict.name = "down monotone"
        && up.Faults.Verdict.name = "up monotone");
      checkb "non-decreasing passes" true up.Faults.Verdict.ok;
      checkb "decrease caught" false down.Faults.Verdict.ok;
      checkb "first drop reported" true
        (let detail = down.Faults.Verdict.detail in
         (* two drops: 3 -> 2 and 4 -> 1; the first is named *)
         String.length detail > 0
         && detail = "2 decreases, first 3 -> 2")
  | checks -> Alcotest.failf "expected 2 checks, got %d" (List.length checks)

let suite =
  [
    ("plan presets roundtrip", `Quick, test_plan_roundtrip);
    ("plan parses spec lists", `Quick, test_plan_parse_spec_list);
    ("plan rejects garbage", `Quick, test_plan_rejects_garbage);
    ("injector deterministic", `Quick, test_injector_deterministic);
    ("injector census counts", `Quick, test_injector_census_counts_actions);
    ("chip transient consumed once", `Quick, test_chip_transient_consumed_once);
    ("chip sticky until erase", `Quick, test_chip_sticky_until_erase);
    ("chip silent corruption xor", `Quick, test_chip_silent_corruption_xor);
    ("chip inject validates", `Quick, test_chip_inject_validates);
    ("verdict passes clean engine", `Quick, test_verdict_passes_clean_engine);
    ("verdict catches lost write", `Quick, test_verdict_catches_lost_write);
    ("verdict catches resurrection", `Quick, test_verdict_catches_resurrection);
    ("monotone tracker", `Quick, test_monotone_tracker);
  ]
