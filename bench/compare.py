#!/usr/bin/env python3
"""Diff two BENCH_*.json benchmark artifacts and gate on regressions.

Usage:
    compare.py BASE.json FRESH.json [--threshold 0.25]
               [--subjects prefix,exact,...] [--normalize SUBJECT]

Both files are the flat {"subject": ns_per_run} artifact the bench
harness writes (`bench/main.exe micro --json`).  The two runs may come
from different machines, so times are first normalized by the shared
no-op subject (--normalize, default telemetry/baseline_nop): what is
gated is each subject's cost relative to an empty benchmarked call on
the same box, not raw nanoseconds.

A subject regresses when fresh > base * (1 + threshold) after
normalization.  Only subjects selected by --subjects are gated; the
default allowlist covers the hot paths the bulk-aging fast path and
the device write/read/GC pipeline rely on.  Entries ending in '/' are
prefixes, anything else matches exactly.  Subjects present in only one
file are reported but never fatal (new benchmarks appear, old ones
retire); a gated subject that is null (measurement failed) in the
fresh file does fail.

Exit status: 0 clean, 1 regression, 2 usage/file errors.
"""

import argparse
import json
import sys

# Hot-path subjects gated by default.  Deliberately absolute-time
# subjects only: the parallel/fleet_jobs* scaling relation has its own
# dedicated guard in CI and is too machine-shape-dependent to diff
# across artifacts.
DEFAULT_SUBJECTS = [
    "fig3/",       # single-device salamander read/write
    "ftl/",        # GC churn, read escalation
    "chaos/",      # fault-path reads, retry ladder, scrub
    "fig3ab/fleet_day",
    "parallel/fleet_years_bulk",
    "traffic/engine_write_batch_64",
    "uber/chip_read_with_disturb",
]


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"compare.py: cannot read {path}: {e}")
    if not isinstance(data, dict):
        sys.exit(f"compare.py: {path}: expected a flat JSON object")
    return data


def selected(subject, patterns):
    return any(
        subject.startswith(p) if p.endswith("/") else subject == p
        for p in patterns
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("base")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.25)
    ap.add_argument(
        "--subjects",
        default=",".join(DEFAULT_SUBJECTS),
        help="comma-separated allowlist; entries ending in '/' are prefixes",
    )
    ap.add_argument("--normalize", default="telemetry/baseline_nop")
    args = ap.parse_args()

    base, fresh = load(args.base), load(args.fresh)
    patterns = [p for p in args.subjects.split(",") if p]

    scale = 1.0
    if args.normalize:
        b, f = base.get(args.normalize), fresh.get(args.normalize)
        if b and f:
            scale = f / b
            print(f"machine speed scale (fresh/base {args.normalize}): "
                  f"{scale:.2f}")
        else:
            print(f"note: {args.normalize} missing from one file; "
                  "comparing raw times")

    failed = False
    gated = 0
    for subject in sorted(set(base) | set(fresh)):
        if not selected(subject, patterns):
            continue
        b, f = base.get(subject), fresh.get(subject)
        if b is None and subject not in base:
            print(f"{subject}: new (no baseline), {f} ns")
            continue
        if subject not in fresh:
            print(f"{subject}: retired (not in fresh run)")
            continue
        if b is None or f is None:
            print(f"{subject}: null measurement "
                  f"(base={b}, fresh={f})  <-- REGRESSED")
            failed = True
            continue
        gated += 1
        ratio = f / (b * scale)
        flag = "  <-- REGRESSED" if ratio > 1 + args.threshold else ""
        print(f"{subject}: {b:.1f} -> {f:.1f} ns "
              f"(normalized ratio {ratio:.2f}){flag}")
        failed = failed or ratio > 1 + args.threshold

    if gated == 0:
        sys.exit("compare.py: allowlist matched no gated subjects")
    if failed:
        sys.exit(f"compare.py: regression beyond "
                 f"{args.threshold:.0%} vs {args.base}")
    print(f"OK: {gated} gated subjects within {args.threshold:.0%}")


if __name__ == "__main__":
    main()
