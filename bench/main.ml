(* Benchmark harness.

   With no arguments this regenerates every table and figure of the paper
   (the per-experiment index in DESIGN.md) and then runs Bechamel
   micro-benchmarks of the hot code paths each experiment leans on.

   With an argument it runs just that piece:
     dune exec bench/main.exe -- fig2
     dune exec bench/main.exe -- micro *)

open Bechamel
open Toolkit

(* --- micro-benchmark subjects ------------------------------------------- *)

let bch_subjects () =
  (* FIG2's substrate: the live codec and the analytic tail. *)
  let code = Ecc.Bch.create ~m:10 ~capability:8 () in
  let rng = Sim.Rng.create 1 in
  let data = Ecc.Bitarray.create 400 in
  Ecc.Bitarray.randomize rng data;
  let parity = Ecc.Bch.encode code data in
  let corrupted () =
    let d = Ecc.Bitarray.copy data and p = Ecc.Bitarray.copy parity in
    List.iter (fun i -> Ecc.Bitarray.flip d (i * 37)) [ 1; 3; 5; 7 ];
    (d, p)
  in
  let params = Ecc.Code_params.for_sector ~data_bytes:2048 ~spare_bytes:256 in
  [
    Test.make ~name:"fig2/bch_encode"
      (Staged.stage (fun () -> ignore (Ecc.Bch.encode code data)));
    Test.make ~name:"fig2/bch_decode_4err"
      (Staged.stage (fun () ->
           let d, p = corrupted () in
           ignore (Ecc.Bch.decode code ~data:d ~parity:p)));
    (* The retained naive paths, so BENCH_5.json carries before/after
       numbers for the table-driven hot paths in one run. *)
    Test.make ~name:"fig2/bch_encode_ref"
      (Staged.stage (fun () -> ignore (Ecc.Bch.Reference.encode code data)));
    Test.make ~name:"fig2/bch_decode_4err_ref"
      (Staged.stage (fun () ->
           let d, p = corrupted () in
           ignore (Ecc.Bch.Reference.decode code ~data:d ~parity:p)));
    Test.make ~name:"fig2/binomial_tail"
      (Staged.stage (fun () ->
           ignore (Ecc.Reliability.codeword_fail_prob params ~rber:3e-3)));
  ]

let ftl_subjects () =
  (* The FTL accounting hot path: steady-state GC churn on a nearly full
     device.  Every write lands on a full buffer page boundary or forces
     allocation, so victim selection, free-block picking and capacity
     sums all run against the incremental structures. *)
  let geometry = Experiments.Defaults.geometry in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
  in
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 41) ~geometry ~model:gentle ()
  in
  let policy =
    Ftl.Policy.always_fresh
      ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage
  in
  let slots =
    geometry.Flash.Geometry.blocks * geometry.Flash.Geometry.pages_per_block
    * geometry.Flash.Geometry.opages_per_fpage
  in
  let logical = slots * 3 / 4 in
  let engine =
    Ftl.Engine.create ~chip ~rng:(Sim.Rng.create 43) ~policy
      ~logical_capacity:logical ()
  in
  for lba = 0 to logical - 1 do
    ignore (Ftl.Engine.write engine ~logical:lba ~payload:lba)
  done;
  ignore (Ftl.Engine.flush engine);
  let cursor = ref 0 in
  [
    Test.make ~name:"ftl/gc_churn"
      (Staged.stage (fun () ->
           cursor := (!cursor + 1) mod logical;
           ignore (Ftl.Engine.write engine ~logical:!cursor ~payload:!cursor)));
    Test.make ~name:"ftl/total_data_slots"
      (Staged.stage (fun () -> ignore (Ftl.Engine.total_data_slots engine)));
  ]

let device_subjects () =
  (* FIG3's substrate: the FTL write path and the Salamander read path. *)
  let geometry = Experiments.Defaults.geometry in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
  in
  let device =
    Salamander.Device.create
      ~config:
        (Experiments.Defaults.salamander_config
           ~mode:Salamander.Device.Regen_s)
      ~geometry ~model:gentle ~rng:(Sim.Rng.create 3) ()
  in
  let mdisk =
    (List.hd (Salamander.Device.active_mdisks device)).Salamander.Minidisk.id
  in
  for lba = 0 to 63 do
    ignore (Salamander.Device.write device ~mdisk ~lba ~payload:lba)
  done;
  Salamander.Device.flush device;
  let cursor = ref 0 in
  [
    Test.make ~name:"fig3/salamander_write"
      (Staged.stage (fun () ->
           cursor := (!cursor + 1) land 63;
           ignore
             (Salamander.Device.write device ~mdisk ~lba:!cursor ~payload:1)));
    Test.make ~name:"fig3/salamander_read"
      (Staged.stage (fun () ->
           cursor := (!cursor + 1) land 63;
           ignore (Salamander.Device.read device ~mdisk ~lba:!cursor)));
  ]

let cluster_subjects () =
  (* TAB-RECOV's substrate: the replicated chunk write path. *)
  let cluster = Difs.Cluster.create () in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
  in
  List.iter
    (fun i ->
      let d =
        Salamander.Device.create
          ~config:
            (Experiments.Defaults.salamander_config
               ~mode:Salamander.Device.Regen_s)
          ~geometry:Experiments.Defaults.geometry ~model:gentle
          ~rng:(Sim.Rng.create (100 + i)) ()
      in
      ignore (Difs.Cluster.add_device cluster ~node:i (Difs.Cluster.Salamander d)))
    [ 0; 1; 2; 3 ];
  let id = ref 0 in
  [
    Test.make ~name:"recovery/cluster_write_chunk"
      (Staged.stage (fun () ->
           id := (!id + 1) land 31;
           ignore (Difs.Cluster.write_chunk cluster !id)));
  ]

let service_subjects () =
  (* AB-QUEUE's substrate: the channel/die queueing model. *)
  let engine = Sim.Engine.create () in
  let service = Flash.Service.create ~engine Flash.Service.default_config in
  let rng = Sim.Rng.create 17 in
  [
    Test.make ~name:"ablations/service_submit"
      (Staged.stage (fun () ->
           Flash.Service.submit service
             ~pages:
               [
                 {
                   Flash.Service.die_hint = Sim.Rng.int rng 64;
                   sense_us = 60.;
                   transfer_us = 4.;
                 };
               ]
             ~on_complete:(fun ~latency_us:_ -> ());
           ignore (Sim.Engine.step engine)));
  ]

let disturb_subjects () =
  (* TAB-UBER's substrate: the read path with disturb accounting. *)
  let model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1000
      ~read_disturb_per_read:1e-8 ()
  in
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 23)
      ~geometry:Experiments.Defaults.geometry ~model ()
  in
  Flash.Chip.program chip ~block:0 ~page:0 [| Some 1; Some 2; Some 3; Some 4 |];
  [
    Test.make ~name:"uber/chip_read_with_disturb"
      (Staged.stage (fun () ->
           ignore (Flash.Chip.read_slot chip ~block:0 ~page:0 ~slot:0);
           ignore (Flash.Chip.rber chip ~block:0 ~page:0)));
  ]

let fleet_subjects () =
  (* FIG3A/B's substrate: one scaled fleet day for a small RegenS group. *)
  [
    Test.make ~name:"fig3ab/fleet_day"
      (Staged.stage (fun () ->
           ignore (Experiments.Fleet.run ~devices:2 ~days:1 ~seed:3 `Regens)));
  ]

let carbon_subjects () =
  [
    Test.make ~name:"fig4/carbon_eq3"
      (Staged.stage (fun () ->
           List.iter
             (fun s -> ignore (Sustain.Carbon.relative_footprint s))
             Sustain.Carbon.paper_scenarios));
    Test.make ~name:"tco/eq4"
      (Staged.stage (fun () ->
           List.iter
             (fun s -> ignore (Sustain.Tco.relative_tco s))
             Sustain.Tco.paper_scenarios));
  ]

let chaos_subjects () =
  (* CHAOS's substrate: the read-retry ladder against a clean-read
     baseline, one scrubber verify slice, and the injector's per-fault
     cost on the chip. *)
  let geometry = Experiments.Defaults.geometry in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
  in
  let make_engine ~fail_prob =
    let chip =
      Flash.Chip.create ~rng:(Sim.Rng.create 29) ~geometry ~model:gentle ()
    in
    let policy =
      {
        (Ftl.Policy.always_fresh
           ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage)
        with
        Ftl.Policy.read_fail_prob = (fun ~rber:_ ~block:_ ~page:_ -> fail_prob);
      }
    in
    let engine =
      Ftl.Engine.create ~chip ~rng:(Sim.Rng.create 31) ~policy
        ~logical_capacity:256 ()
    in
    for lba = 0 to 63 do
      ignore (Ftl.Engine.write engine ~logical:lba ~payload:lba)
    done;
    ignore (Ftl.Engine.flush engine);
    engine
  in
  let clean = make_engine ~fail_prob:0. in
  (* Every read fails its first decode with p = 0.5, so the ladder runs
     one retry on average — the steady-state overhead the config buys. *)
  let flaky = make_engine ~fail_prob:0.5 in
  let scrub_cluster = Difs.Cluster.create () in
  List.iter
    (fun i ->
      let d =
        Salamander.Device.create
          ~config:
            (Experiments.Defaults.salamander_config
               ~mode:Salamander.Device.Regen_s)
          ~geometry ~model:gentle
          ~rng:(Sim.Rng.create (200 + i))
          ()
      in
      ignore
        (Difs.Cluster.add_device scrub_cluster ~node:i
           (Difs.Cluster.Salamander d)))
    [ 0; 1; 2; 3 ];
  for id = 0 to 15 do
    ignore (Difs.Cluster.write_chunk scrub_cluster id)
  done;
  (* Escalation hot path: every read exhausts the ladder instantly
     (read_retries = 0, fail_prob = 1) and the hook answers, so each
     iteration is one full escalate-and-rescue round trip. *)
  let escalating =
    let chip =
      Flash.Chip.create ~rng:(Sim.Rng.create 41) ~geometry ~model:gentle ()
    in
    let policy =
      {
        (Ftl.Policy.always_fresh
           ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage)
        with
        Ftl.Policy.read_fail_prob = (fun ~rber:_ ~block:_ ~page:_ -> 1.);
      }
    in
    let engine =
      Ftl.Engine.create
        ~config:{ Ftl.Engine.default_config with Ftl.Engine.read_retries = 0 }
        ~chip ~rng:(Sim.Rng.create 43) ~policy ~logical_capacity:256 ()
    in
    for lba = 0 to 63 do
      ignore (Ftl.Engine.write engine ~logical:lba ~payload:lba)
    done;
    ignore (Ftl.Engine.flush engine);
    Ftl.Engine.set_recovery_hook engine (Some (fun ~logical -> Some logical));
    engine
  in
  (* Foreground live repair: recover one oPage of a replicated chunk from
     a healthy replica and rewrite it in place, per iteration. *)
  let repair_cluster = Difs.Cluster.create () in
  List.iter
    (fun i ->
      let d =
        Ftl.Baseline_ssd.create ~geometry ~model:gentle
          ~rng:(Sim.Rng.create (300 + i))
          ()
      in
      ignore
        (Difs.Cluster.add_device repair_cluster ~node:i
           (Difs.Cluster.Monolithic
              (Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)))))
    [ 0; 1; 2 ];
  for id = 0 to 3 do
    ignore (Difs.Cluster.write_chunk repair_cluster id)
  done;
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 37) ~geometry ~model:gentle ()
  in
  let c_clean = ref 0 and c_flaky = ref 0 and c_esc = ref 0 in
  let r_lba = ref 0 and blk = ref 0 in
  [
    Test.make ~name:"chaos/read_clean"
      (Staged.stage (fun () ->
           c_clean := (!c_clean + 1) land 63;
           ignore (Ftl.Engine.read clean ~logical:!c_clean)));
    Test.make ~name:"chaos/retry_ladder"
      (Staged.stage (fun () ->
           c_flaky := (!c_flaky + 1) land 63;
           ignore (Ftl.Engine.read flaky ~logical:!c_flaky)));
    Test.make ~name:"ftl/read_escalation"
      (Staged.stage (fun () ->
           c_esc := (!c_esc + 1) land 63;
           ignore (Ftl.Engine.read escalating ~logical:!c_esc)));
    Test.make ~name:"chaos/live_recovery"
      (Staged.stage (fun () ->
           (* 4 chunks x 16 oPages live at the front of device 0 *)
           r_lba := (!r_lba + 1) land 63;
           ignore
             (Difs.Cluster.recover_opage repair_cluster ~device:0 ~lba:!r_lba)));
    Test.make ~name:"chaos/scrub_slice"
      (Staged.stage (fun () ->
           ignore (Difs.Cluster.scrub ~limit:1 scrub_cluster)));
    Test.make ~name:"chaos/inject_transient"
      (Staged.stage (fun () ->
           blk := (!blk + 1) land 31;
           Flash.Chip.inject chip ~block:!blk ~page:0
             (Flash.Chip.Transient_rber 1e-3);
           ignore (Flash.Chip.take_transient chip ~block:!blk ~page:0)));
  ]

let telemetry_subjects () =
  (* The zero-cost claim behind lib/telemetry: an update to a null-registry
     metric is a single branch on an immutable bool, so the instrumented
     hot paths cost the same with telemetry off as they did before
     instrumentation.  Compare a pure no-op closure, disabled and enabled
     metric updates, and the full Salamander write path both ways. *)
  let null_counter =
    Telemetry.Registry.counter Telemetry.Registry.null "bench_noop_total"
  in
  let live_reg = Telemetry.Registry.create () in
  let live_counter = Telemetry.Registry.counter live_reg "bench_live_total" in
  let null_hist =
    Telemetry.Registry.histogram Telemetry.Registry.null ~lo:0. ~hi:100.
      "bench_noop_us"
  in
  let live_hist =
    Telemetry.Registry.histogram live_reg ~lo:0. ~hi:100. "bench_live_us"
  in
  let make_device registry =
    let gentle =
      Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
    in
    let device =
      Salamander.Device.create
        ~config:
          (Experiments.Defaults.salamander_config
             ~mode:Salamander.Device.Regen_s)
        ~registry ~geometry:Experiments.Defaults.geometry ~model:gentle
        ~rng:(Sim.Rng.create 3) ()
    in
    let mdisk =
      (List.hd (Salamander.Device.active_mdisks device)).Salamander.Minidisk.id
    in
    for lba = 0 to 63 do
      ignore (Salamander.Device.write device ~mdisk ~lba ~payload:lba)
    done;
    Salamander.Device.flush device;
    (device, mdisk)
  in
  let dev_off, md_off = make_device Telemetry.Registry.null in
  let dev_on, md_on = make_device live_reg in
  (* One run = one full sweep of the 64-LBA window, not one write: the
     devices wear and GC-churn monotonically across samples, so a
     single-write subject measures a drifting baseline and the OLS fit
     of the disabled/enabled pair can land either side of the other
     (BENCH_6 recorded the disabled path 1.8x slower).  A whole
     overwrite cycle per run keeps every sample's GC/relocation work
     aligned, so the pair differs only in the registry wired in. *)
  let sweep device mdisk =
    for lba = 0 to 63 do
      ignore (Salamander.Device.write device ~mdisk ~lba ~payload:1)
    done
  in
  [
    Test.make ~name:"telemetry/baseline_nop" (Staged.stage (fun () -> ()));
    Test.make ~name:"telemetry/counter_disabled"
      (Staged.stage (fun () -> Telemetry.Registry.Counter.incr null_counter));
    Test.make ~name:"telemetry/counter_enabled"
      (Staged.stage (fun () -> Telemetry.Registry.Counter.incr live_counter));
    Test.make ~name:"telemetry/histogram_disabled"
      (Staged.stage (fun () ->
           Telemetry.Registry.Histogram.observe null_hist 42.));
    Test.make ~name:"telemetry/histogram_enabled"
      (Staged.stage (fun () ->
           Telemetry.Registry.Histogram.observe live_hist 42.));
    Test.make ~name:"telemetry/salamander_write_disabled"
      (Staged.stage (fun () -> sweep dev_off md_off));
    Test.make ~name:"telemetry/salamander_write_enabled"
      (Staged.stage (fun () -> sweep dev_on md_on));
  ]

let parallel_subjects () =
  (* The tentpole's speedup claim: the default 24-device fleet aged on 1,
     2 and 4 domains.  Identical seeds give byte-identical fleet results
     at every job count; only the wall-clock should move.  The pool is a
     bechamel resource allocated once per subject and reused across
     iterations — domain spawn plus per-domain nursery commit is a fixed
     ~12 ms/domain that any long-lived fleet service (and the CLI, once
     per process) pays exactly once, so folding it into every iteration
     would misprice steady-state scaling.  [free] still tears the pool
     down before the next subject starts: a pool that outlives its
     subject would leave idle domains attending every later subject's
     minor-GC rendezvous, taxing measurements that have nothing to do
     with parallelism (the BENCH_6 lesson). *)
  let days = 40 in
  let subject name jobs =
    if jobs = 1 then
      Test.make ~name
        (Staged.stage (fun () ->
             ignore (Experiments.Fleet.run ~days ~seed:3 `Regens)))
    else
      Test.make_with_resource ~name Test.uniq
        ~allocate:(fun () -> Parallel.Pool.create ~domains:jobs)
        ~free:Parallel.Pool.shutdown
        (Staged.stage (fun pool ->
             let ctx = Experiments.Ctx.make ~pool () in
             ignore (Experiments.Fleet.run ~days ~seed:3 ~ctx `Regens)))
  in
  (* The datacenter-scale headline: a 100k-device RegenS fleet aged one
     scaled day (light duty cycle) on 4 domains through the chunked
     accumulator path — ~1563 devices per chunk, one scratch registry
     per chunk, no per-device task or handshake. *)
  let fleet_100k () =
    Parallel.Pool.with_pool ~domains:4 (fun pool ->
        let ctx = Experiments.Ctx.make ~pool () in
        ignore
          (Experiments.Fleet.run ~devices:100_000 ~days:1 ~dwpd:0.05 ~seed:3
             ~ctx `Regens))
  in
  (* The bulk-aging tentpole pair: one simulated year of a small fleet
     at a light cloud duty cycle (0.01 DWPD), driven per-op (one device
     call per write, the retained oracle) and through the bulk fast
     path (`Auto`).  Both produce bit-identical results — the
     differential suite in test/test_bulk_aging.ml pins that — so the
     ratio prices pure driver overhead.  The epoch coalescing (30 days
     per epoch) is what a multi-year fleet run actually uses. *)
  let fleet_years ~aging () =
    ignore
      (Experiments.Fleet.run ~devices:8 ~days:365 ~dwpd:0.01 ~seed:3
         ~epoch_days:30 ~aging `Regens)
  in
  (* The multi-year headline at fleet scale: 100k devices aged one
     simulated year in a single epoch each, light duty cycle, on the
     4-domain chunked accumulator path. *)
  let fleet_100k_years () =
    Parallel.Pool.with_pool ~domains:4 (fun pool ->
        let ctx = Experiments.Ctx.make ~pool () in
        ignore
          (Experiments.Fleet.run ~devices:100_000 ~days:365 ~dwpd:0.002
             ~seed:3 ~epoch_days:365 ~ctx `Regens))
  in
  [
    subject "parallel/fleet_jobs1" 1;
    subject "parallel/fleet_jobs2" 2;
    subject "parallel/fleet_jobs4" 4;
    Test.make ~name:"parallel/fleet_years_per_op"
      (Staged.stage (fleet_years ~aging:Workload.Aging.Per_op));
    Test.make ~name:"parallel/fleet_years_bulk"
      (Staged.stage (fleet_years ~aging:Workload.Aging.Auto));
    Test.make ~name:"parallel/fleet_100k_chunked" (Staged.stage fleet_100k);
    Test.make ~name:"parallel/fleet_100k_years" (Staged.stage fleet_100k_years);
  ]

let monitor_subjects () =
  (* ISSUE 4's overhead claim: what longitudinal sampling adds to a
     fleet day.  [fleet_mon_off] is the null-monitor path (the branch
     every instrumented loop takes when no monitor is attached);
     [fleet_mon_every1] samples every epoch — the worst case.  The two
     micro-subjects price one raw series sample and one full registry
     sweep, the primitives the per-epoch cost is made of. *)
  let fleet mon_every =
    let monitor =
      Option.map
        (fun sample_every -> Monitor.Engine.create ~sample_every ())
        mon_every
    in
    let ctx =
      Experiments.Ctx.make ~registry:(Telemetry.Registry.create ()) ?monitor ()
    in
    ignore (Experiments.Fleet.run ~devices:2 ~days:4 ~seed:3 ~ctx `Regens)
  in
  let series = Monitor.Series.create () in
  let t = ref 0. in
  let sweep_reg = Telemetry.Registry.create () in
  for i = 0 to 15 do
    Telemetry.Registry.Gauge.set
      (Telemetry.Registry.gauge sweep_reg (Printf.sprintf "g%d" i))
      (float_of_int i)
  done;
  let sampler = Monitor.Sampler.create () in
  [
    Test.make ~name:"monitor/series_add"
      (Staged.stage (fun () ->
           t := !t +. 1.;
           Monitor.Series.add series ~time:!t 42.));
    Test.make ~name:"monitor/registry_sweep_16"
      (Staged.stage (fun () ->
           t := !t +. 1.;
           Monitor.Sampler.sample sampler ~time:!t sweep_reg));
    Test.make ~name:"monitor/fleet_mon_off"
      (Staged.stage (fun () -> fleet None));
    Test.make ~name:"monitor/fleet_mon_every1"
      (Staged.stage (fun () -> fleet (Some 1)));
  ]

let traffic_subjects () =
  (* ISSUE 6's substrate: the trace generator, the replayer, and the
     batched submission path that amortizes per-op overhead.  The gentle
     wear model keeps the devices healthy across thousands of bench
     iterations, so every run measures the same steady state. *)
  let spec =
    {
      Traffic.Gen.default_spec with
      Traffic.Gen.tenants = 64;
      ops = 2_000;
      window = 1024;
    }
  in
  let trace = Traffic.Gen.generate spec ~seed:7 in
  let geometry = Experiments.Defaults.geometry in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()
  in
  let replay_device =
    let d =
      Ftl.Baseline_ssd.create ~geometry ~model:gentle ~rng:(Sim.Rng.create 5) ()
    in
    Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)
  in
  let prefill =
    Stdlib.min 1024 (Ftl.Device_intf.logical_capacity replay_device)
  in
  ignore
    (Ftl.Device_intf.write_many replay_device
       (Array.init prefill (fun i -> (i, i))));
  let population = Traffic.Tenant.create ~tenants:64 () in
  (* Twin engines on the same scale for the submission-path comparison:
     64 distinct LBAs per round, once through Engine.write in a loop and
     once through Engine.write_batch. *)
  let make_engine seed =
    let chip =
      Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model:gentle ()
    in
    let policy =
      Ftl.Policy.always_fresh
        ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage
    in
    let slots =
      geometry.Flash.Geometry.blocks * geometry.Flash.Geometry.pages_per_block
      * geometry.Flash.Geometry.opages_per_fpage
    in
    let logical = slots * 3 / 4 in
    let engine =
      Ftl.Engine.create ~chip ~rng:(Sim.Rng.create (seed + 1)) ~policy
        ~logical_capacity:logical ()
    in
    for lba = 0 to logical - 1 do
      ignore (Ftl.Engine.write engine ~logical:lba ~payload:lba)
    done;
    ignore (Ftl.Engine.flush engine);
    engine
  in
  let per_op_engine = make_engine 23 and batch_engine = make_engine 23 in
  let entries = Array.init 64 (fun i -> (i, i)) in
  [
    Test.make ~name:"traffic/generate_2k"
      (Staged.stage (fun () -> ignore (Traffic.Gen.generate spec ~seed:7)));
    Test.make ~name:"traffic/replay_2k"
      (Staged.stage (fun () ->
           ignore
             (Traffic.Replay.run ~qos:Traffic.Qos.default_config
                ~intensity:(fun ~op -> Traffic.Gen.intensity spec ~op)
                ~population ~trace ~device:replay_device ())));
    Test.make ~name:"traffic/engine_write_per_op_64"
      (Staged.stage (fun () ->
           Array.iter
             (fun (logical, payload) ->
               ignore (Ftl.Engine.write per_op_engine ~logical ~payload))
             entries));
    Test.make ~name:"traffic/engine_write_batch_64"
      (Staged.stage (fun () ->
           ignore (Ftl.Engine.write_batch batch_engine entries)));
  ]

let obs_subjects () =
  (* The observability plane's cost model: one digest observation
     (amortized compression), one quantile query over a compressed
     digest, one top-K offer against a full tracker, one fleet-report
     observation (four digests + grade + top-K), and the per-chunk
     merge the reduction pays once per chunk, not per device. *)
  let warm = Obs.Digest.create () in
  let i = ref 0 in
  for j = 0 to 9_999 do
    Obs.Digest.add warm (float_of_int ((j * 7919) mod 997))
  done;
  ignore (Obs.Digest.quantile warm 0.5);
  let topk = Obs.Topk.Topk.create ~k:10 () in
  for j = 0 to 999 do
    Obs.Topk.Topk.offer topk
      ~id:(Printf.sprintf "dev-%d" j)
      ~score:(float_of_int ((j * 2654435761) mod 997))
      ()
  done;
  let acc = Obs.Fleet_report.Acc.create () in
  let observation index =
    {
      Obs.Fleet_report.id = Printf.sprintf "dev-%d" index;
      pec_max = index mod 80;
      pec_min = index mod 11;
      rber_worst = 1e-4;
      tolerable_rber = 1e-2;
      retries = index mod 7;
      escalations = 0;
      reclaims = 0;
      host_writes = 1000;
      alive = index mod 17 <> 0;
    }
  in
  let chunk = Obs.Fleet_report.Acc.sub acc in
  for j = 0 to 999 do
    Obs.Fleet_report.Acc.observe chunk (observation j)
  done;
  [
    Test.make ~name:"obs/digest_add"
      (Staged.stage (fun () ->
           i := !i + 1;
           Obs.Digest.add warm (float_of_int (!i mod 997))));
    Test.make ~name:"obs/digest_quantile"
      (Staged.stage (fun () -> ignore (Obs.Digest.quantile warm 0.99)));
    Test.make ~name:"obs/topk_offer"
      (Staged.stage (fun () ->
           i := !i + 1;
           Obs.Topk.Topk.offer topk
             ~id:(Printf.sprintf "dev-%d" (!i mod 4096))
             ~score:(float_of_int (!i mod 997))
             ()));
    Test.make ~name:"obs/fleet_observe"
      (Staged.stage (fun () ->
           i := !i + 1;
           Obs.Fleet_report.Acc.observe acc (observation !i)));
    Test.make ~name:"obs/acc_merge_1k"
      (Staged.stage (fun () ->
           let into = Obs.Fleet_report.Acc.create () in
           Obs.Fleet_report.Acc.merge ~into chunk));
  ]

(* Flat {"subject": ns_per_run} JSON, one line per subject in sorted
   order, so CI diffs of the artifact stay readable. *)
let write_json_results path rows =
  let oc = open_out path in
  output_string oc "{\n";
  let last = List.length rows - 1 in
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %s%s\n" name
        (match ns with Some v -> Printf.sprintf "%.1f" v | None -> "null")
        (if i = last then "" else ","))
    rows;
  output_string oc "}\n";
  close_out oc

(* Parse the flat format back: one ["subject": value,] line per subject.
   Tolerant of the trailing comma's absence and of "null" values, and of
   a hand-edited file as long as it keeps the one-entry-per-line shape;
   anything unparseable is skipped rather than fatal (the merge then
   treats those subjects as absent). *)
let read_json_results path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         match String.length line with
         | 0 -> ()
         | _ when line.[0] <> '"' -> ()
         | _ -> (
             try
               Scanf.sscanf line "%S : %s" (fun name value ->
                   let value =
                     match String.length value with
                     | n when n > 0 && value.[n - 1] = ',' ->
                         String.sub value 0 (n - 1)
                     | _ -> value
                   in
                   let ns =
                     if String.equal value "null" then None
                     else float_of_string_opt value
                   in
                   entries := (name, ns) :: !entries)
             with Scanf.Scan_failure _ | End_of_file -> ())
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

(* Group registry for the [--only] filter.  Group names mostly match
   the subject-name prefix ("parallel" owns "parallel/fleet_jobs4"),
   though a few groups span several prefixes (e.g. "carbon" also owns
   the fig4/tco subjects). *)
let subject_groups =
  [
    ("bch", bch_subjects);
    ("ftl", ftl_subjects);
    ("device", device_subjects);
    ("cluster", cluster_subjects);
    ("service", service_subjects);
    ("disturb", disturb_subjects);
    ("fleet", fleet_subjects);
    ("carbon", carbon_subjects);
    ("chaos", chaos_subjects);
    ("telemetry", telemetry_subjects);
    ("monitor", monitor_subjects);
    ("parallel", parallel_subjects);
    ("traffic", traffic_subjects);
    ("obs", obs_subjects);
  ]

let run_micro ?json_path ?only () =
  let groups =
    match only with
    | None -> subject_groups
    | Some names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n subject_groups) then begin
              Printf.eprintf "unknown bench group %S (have: %s)\n" n
                (String.concat ", " (List.map fst subject_groups));
              exit 2
            end)
          names;
        List.filter (fun (n, _) -> List.mem n names) subject_groups
  in
  let tests = List.concat_map (fun (_, f) -> f ()) groups in
  let grouped = Test.make_grouped ~name:"salamander" ~fmt:"%s.%s" tests in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.=== Bechamel micro-benchmarks (monotonic clock) ===@.";
  let estimates =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Some t
          | _ -> None
        in
        let r2 = Analyze.OLS.r_square ols in
        (name, ns, r2) :: acc)
      results []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun (name, ns, r2) ->
        [
          name;
          (match ns with Some t -> Printf.sprintf "%.1f" t | None -> "n/a");
          (match r2 with Some r -> Printf.sprintf "%.4f" r | None -> "n/a");
        ])
      estimates
  in
  Experiments.Report.table Format.std_formatter
    ~header:[ "benchmark"; "ns/run"; "r²" ]
    ~rows;
  Format.printf "@.";
  match json_path with
  | None -> ()
  | Some path ->
      (* Subject names without the harness group prefix. *)
      let strip name =
        match String.index_opt name '.' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      let fresh = List.map (fun (name, ns, _) -> (strip name, ns)) estimates in
      (* Merge over what's already on disk: subjects measured in this
         run override their old entries, subjects not selected (e.g. a
         [--only parallel] re-run) keep theirs.  A partial re-run thus
         refreshes the artifact instead of truncating it. *)
      let kept =
        List.filter
          (fun (name, _) -> not (List.mem_assoc name fresh))
          (read_json_results path)
      in
      let merged =
        List.sort (fun (a, _) (b, _) -> compare a b) (kept @ fresh)
      in
      write_json_results path merged;
      Format.printf "wrote %s (%d subjects, %d refreshed)@." path
        (List.length merged) (List.length fresh)

(* --- dispatch -------------------------------------------------------------- *)

(* Each experiment runs against its own fresh registry, so the snapshot
   printed after it covers exactly the devices/clusters that experiment
   built — cross-experiment aggregation would hide per-run regressions. *)
let run_experiment fmt (id, runner) =
  let reg = Telemetry.Registry.create () in
  let ctx = Experiments.Ctx.make ~registry:reg () in
  Telemetry.Trace.with_span ~registry:reg ("experiment:" ^ id) (fun () ->
      runner ctx fmt);
  match Telemetry.Registry.snapshot reg with
  | [] -> ()
  | samples ->
      Format.fprintf fmt "@.--- telemetry: %s ---@.%a@." id
        Telemetry.Export.pp_table samples

let run_all fmt =
  List.iter
    (fun (id, runner) ->
      Format.fprintf fmt "@.### experiment %s@." id;
      run_experiment fmt (id, runner))
    Experiments.All.experiments;
  Format.fprintf fmt "@."

let usage () =
  print_endline "usage: main.exe [experiment|micro|all]";
  print_endline "experiments:";
  List.iter
    (fun (id, _) -> Printf.printf "  %s\n" id)
    Experiments.All.experiments;
  print_endline "  micro (Bechamel micro-benchmarks)";
  print_endline
    "  micro [--only GROUP[,GROUP..]] [--json [path]] (ns/run JSON, default";
  print_endline
    "    BENCH_10.json; --json merges into an existing file, so an --only";
  print_endline "    re-run refreshes just its groups)";
  print_endline "  all (default: everything)"

(* micro [--only GROUP[,GROUP..]] [--json [path]] *)
let run_micro_cli args =
  let rec parse json_path only = function
    | [] -> run_micro ?json_path ?only ()
    | "--json" :: rest -> (
        match rest with
        | path :: rest' when String.length path > 1 && path.[0] <> '-' ->
            parse (Some path) only rest'
        | _ -> parse (Some "BENCH_10.json") only rest)
    | "--only" :: groups :: rest ->
        parse json_path (Some (String.split_on_char ',' groups)) rest
    | _ ->
        usage ();
        exit 2
  in
  parse None None args

let () =
  let fmt = Format.std_formatter in
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] ->
      run_all fmt;
      run_micro ()
  | _ :: "micro" :: rest -> run_micro_cli rest
  | [ _; id ] -> (
      match List.assoc_opt id Experiments.All.experiments with
      | Some runner -> run_experiment fmt (id, runner)
      | None -> usage ())
  | _ -> usage ()
