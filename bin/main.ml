(* The salamander CLI: run paper experiments, age single devices, inspect
   the level table, and evaluate the carbon/TCO models with custom
   parameters. *)

open Cmdliner

let fmt = Format.std_formatter

(* --- telemetry options ------------------------------------------------------ *)

type metrics_format = Table | Prometheus | Jsonl

let metrics_format_conv =
  Arg.enum [ ("table", Table); ("prometheus", Prometheus); ("jsonl", Jsonl) ]

type tel_opts = {
  metrics : string option;
  metrics_format : metrics_format;
  verbosity : int;
}

let tel_opts_term =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Collect telemetry while running and write a metric snapshot to \
             $(docv) (\"-\" for stdout).")
  in
  let metrics_format =
    Arg.(
      value
      & opt metrics_format_conv Table
      & info [ "metrics-format"; "format" ] ~docv:"FMT"
          ~doc:"Snapshot format: table, prometheus or jsonl.")
  in
  let verbosity =
    Arg.(
      value & opt int 0
      & info [ "verbosity" ] ~docv:"N"
          ~doc:"Log verbosity: 0 = off, 1 = warnings, 2 = info, 3+ = debug.")
  in
  let make metrics metrics_format verbosity =
    { metrics; metrics_format; verbosity }
  in
  Term.(const make $ metrics $ metrics_format $ verbosity)

let render_snapshot format samples =
  match format with
  | Table -> Format.asprintf "%a" Telemetry.Export.pp_table samples
  | Prometheus -> Telemetry.Export.to_prometheus samples
  | Jsonl -> Telemetry.Export.to_jsonl samples

(* Build the registry [f]'s components bind their metric handles against:
   a live one when a snapshot was requested (or when [force_live] — the
   health monitor samples the registry, so it needs real metrics even if
   no snapshot file was asked for), {!Telemetry.Registry.null}
   (collection compiled away) otherwise. *)
let with_telemetry ?(force_live = false) opts f =
  Telemetry.Trace.set_level (Telemetry.Trace.level_of_verbosity opts.verbosity);
  if opts.verbosity > 0 then Logs.set_reporter (Logs.format_reporter ());
  match opts.metrics with
  | None ->
      f
        (if force_live then Telemetry.Registry.create ()
         else Telemetry.Registry.null)
  | Some path ->
      let reg = Telemetry.Registry.create () in
      let result = f reg in
      (try
         Telemetry.Export.write_file ~path
           (render_snapshot opts.metrics_format
              (Telemetry.Registry.snapshot reg))
       with Sys_error msg ->
         Printf.eprintf "salamander: cannot write metrics: %s\n" msg;
         exit 1);
      result

(* --- health monitor options ------------------------------------------------- *)

type mon_opts = {
  sample_every : int option;
  timeline : string option;
  timeline_format : [ `Csv | `Jsonl ];
  chrome_trace : string option;
  health : bool;
}

let no_monitor =
  {
    sample_every = None;
    timeline = None;
    timeline_format = `Csv;
    chrome_trace = None;
    health = false;
  }

(* Any monitor flag turns the whole sampling path on; none leaves the
   null-monitor fast path (no live registry, no sampling) untouched. *)
let monitor_active m =
  m.sample_every <> None || m.timeline <> None || m.chrome_trace <> None
  || m.health

let mon_opts_term =
  let sample_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Sample device health every $(docv) epochs (fleet days, chaos \
             steps, aging slices).  Implies monitoring; default interval 1.")
  in
  let timeline =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the sampled time series to $(docv) (\"-\" for stdout); \
             byte-identical at any --jobs.")
  in
  let timeline_format =
    Arg.(
      value
      & opt (Arg.enum [ ("csv", `Csv); ("jsonl", `Jsonl) ]) `Csv
      & info [ "timeline-format" ] ~docv:"FMT"
          ~doc:"Timeline format: csv or jsonl.")
  in
  let chrome_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome-trace" ] ~docv:"FILE"
          ~doc:
            "Record structured spans on the simulation clock and write a \
             Chrome trace_event JSON to $(docv) (load via chrome://tracing \
             or Perfetto).")
  in
  let health =
    Arg.(
      value & flag
      & info [ "health" ]
          ~doc:"Print the SMART-style per-device health report after the run.")
  in
  let make sample_every timeline timeline_format chrome_trace health =
    { sample_every; timeline; timeline_format; chrome_trace; health }
  in
  Term.(
    const make $ sample_every $ timeline $ timeline_format $ chrome_trace
    $ health)

(* Built-in alert rules on the experiment calibration: device death,
   wear past the rated target, and RBER approaching the default code's
   tolerance.  The hysteresis bands keep a series that oscillates around
   a threshold from spamming transitions. *)
let default_rules () =
  let tolerable =
    (Ftl.Ecc_profile.of_geometry Experiments.Defaults.geometry)
      .Ftl.Ecc_profile.tolerable_rber
  in
  let target = float_of_int Experiments.Defaults.target_pec in
  [
    Monitor.Alert.rule ~direction:Monitor.Alert.Below ~metric:"device_alive"
      ~fire:0.5 ~resolve:0.5 "device-dead";
    Monitor.Alert.rule ~metric:"flash_pec_max" ~fire:target
      ~resolve:(0.9 *. target) "wear-past-target";
    Monitor.Alert.rule ~metric:"flash_rber_worst" ~fire:(0.9 *. tolerable)
      ~resolve:(0.7 *. tolerable) "rber-near-tolerable";
  ]

let write_artifact ~what ~path content =
  try Telemetry.Export.write_file ~path content
  with Sys_error msg ->
    Printf.eprintf "salamander: cannot write %s: %s\n" what msg;
    exit 1

(* Build the monitor engine when any monitor flag is set, run [f] with
   it, then write the requested artifacts and render the health report. *)
let with_monitor mon f =
  if not (monitor_active mon) then f None
  else begin
    let sink =
      match mon.chrome_trace with
      | Some _ -> Some (Telemetry.Trace.Sink.create ())
      | None -> None
    in
    let engine =
      Monitor.Engine.create ?sample_every:mon.sample_every
        ~rules:(default_rules ()) ?sink ()
    in
    let result = f (Some engine) in
    Option.iter
      (fun path ->
        let sampler = Monitor.Engine.sampler engine in
        let content =
          match mon.timeline_format with
          | `Csv -> Monitor.Timeline.to_csv sampler
          | `Jsonl -> Monitor.Timeline.to_jsonl sampler
        in
        write_artifact ~what:"timeline" ~path content)
      mon.timeline;
    Option.iter
      (fun path ->
        Option.iter
          (fun sink ->
            write_artifact ~what:"trace" ~path
              (Monitor.Chrome_trace.to_string sink))
          (Monitor.Engine.sink engine))
      mon.chrome_trace;
    if mon.health then begin
      let thresholds =
        {
          Monitor.Health.default_thresholds with
          Monitor.Health.target_pec =
            float_of_int Experiments.Defaults.target_pec;
        }
      in
      Monitor.Health.pp fmt
        (Monitor.Health.assess ~thresholds (Monitor.Engine.sampler engine))
    end;
    result
  end

(* --- fleet observability ----------------------------------------------------- *)

type obs_opts = {
  fleet_report : bool;
  top_k : int;
  fleet_json : string option;
}

let no_obs = { fleet_report = false; top_k = 10; fleet_json = None }

(* Either output flag turns the collection on; without them the plane
   stays off (no per-device media scans, no accumulators). *)
let obs_active o = o.fleet_report || o.fleet_json <> None

let obs_opts_term =
  let fleet_report =
    Arg.(
      value & flag
      & info [ "fleet-report" ]
          ~doc:
            "Print the fleet wear-imbalance report after the run: sketch \
             quantiles of per-device wear / spread / worst RBER / retry \
             rate, CV and Gini of the P/E distribution, per-grade counts \
             and the exact top-K worst devices — in O(K) memory however \
             large the fleet, byte-identical at any --jobs.")
  in
  let top_k =
    Arg.(
      value & opt int 10
      & info [ "top-k" ] ~docv:"K"
          ~doc:"Worst devices kept in the fleet report (exact top-K).")
  in
  let fleet_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet-json" ] ~docv:"FILE"
          ~doc:
            "Write the fleet report as JSONL to $(docv) (\"-\" for stdout); \
             implies collection.")
  in
  let make fleet_report top_k fleet_json = { fleet_report; top_k; fleet_json } in
  Term.(const make $ fleet_report $ top_k $ fleet_json)

(* Build the fleet-report accumulator when requested, run [f] with it,
   then build the report once and emit it to each requested output. *)
let with_obs obs ~epoch f =
  if not (obs_active obs) then f None
  else begin
    let thresholds =
      {
        Monitor.Health.default_thresholds with
        Monitor.Health.target_pec = float_of_int Experiments.Defaults.target_pec;
      }
    in
    let acc =
      Obs.Fleet_report.Acc.create ~top_k:(Stdlib.max 1 obs.top_k) ~thresholds ()
    in
    let result = f (Some acc) in
    let report = Obs.Fleet_report.build ~epoch acc in
    if obs.fleet_report then Obs.Fleet_report.pp fmt report;
    Option.iter
      (fun path ->
        write_artifact ~what:"fleet report" ~path
          (Obs.Fleet_report.to_jsonl report))
      obs.fleet_json;
    result
  end

(* --- parallelism ------------------------------------------------------------ *)

let jobs_term =
  let doc =
    "Worker domains for the parallel sections (fleet aging, experiment \
     fan-out).  1 runs everything sequentially; output is byte-identical \
     at any value.  Values above the hardware's recommended domain count \
     are clamped."
  in
  Arg.(
    value
    & opt int (Parallel.Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Telemetry + execution context: spin up a scoped pool when parallel
   and hand [f] a ready-to-thread [Ctx.t].  An explicit [--jobs n] is
   honored even beyond the recommended domain count (the default already
   respects it): oversubscription only costs scheduling, and running the
   real multi-domain path everywhere is what the determinism guarantee
   is tested against. *)
let with_context ?(mon = no_monitor) ?(obs = no_obs) ?(epoch = "run") opts
    ~jobs f =
  with_monitor mon @@ fun monitor ->
  with_obs obs ~epoch @@ fun obs_acc ->
  with_telemetry ~force_live:(Option.is_some monitor) opts @@ fun registry ->
  let jobs = Stdlib.max 1 jobs in
  if jobs = 1 then f (Experiments.Ctx.make ~registry ?monitor ?obs:obs_acc ())
  else
    Parallel.Pool.with_pool ~domains:jobs (fun pool ->
        f (Experiments.Ctx.make ~registry ~pool ?monitor ?obs:obs_acc ()))

(* --- experiments ----------------------------------------------------------- *)

let experiment_ids = List.map fst Experiments.All.experiments

let experiments_cmd =
  let only =
    let doc =
      Printf.sprintf "Run a single experiment: one of %s."
        (String.concat ", " experiment_ids)
    in
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)
  in
  let run tel jobs only =
    match only with
    | None ->
        with_context tel ~jobs (fun ctx -> Experiments.All.run ~ctx fmt);
        `Ok ()
    | Some id -> (
        match List.assoc_opt id Experiments.All.experiments with
        | Some runner ->
            with_context tel ~jobs (fun ctx ->
                Telemetry.Trace.with_span
                  ~registry:ctx.Experiments.Ctx.registry
                  ("experiment:" ^ id)
                  (fun () -> runner ctx fmt));
            `Ok ()
        | None ->
            `Error
              (false, Printf.sprintf "unknown experiment %s (try one of %s)"
                 id
                 (String.concat ", " experiment_ids)))
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures (DESIGN.md index)")
    Term.(ret (const run $ tel_opts_term $ jobs_term $ only))

(* --- age a single device ----------------------------------------------------- *)

let kind_conv =
  Arg.enum
    [ ("baseline", `Baseline); ("cvss", `Cvss); ("shrinks", `Shrinks);
      ("regens", `Regens) ]

let age_cmd =
  let kind =
    Arg.(
      value
      & opt kind_conv `Regens
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Device design: baseline, cvss, shrinks or regens.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let utilization =
    Arg.(
      value & opt float 0.85
      & info [ "utilization" ] ~docv:"FRACTION"
          ~doc:"Fraction of exported capacity kept live.")
  in
  let run tel jobs mon kind seed utilization =
    with_context ~mon tel ~jobs @@ fun ctx ->
    let registry = ctx.Experiments.Ctx.registry in
    let device = Experiments.Defaults.make_device ~registry kind ~seed in
    let pattern =
      Workload.Pattern.uniform
        ~window:
          (Stdlib.max 1
             (int_of_float
                (utilization
                *. float_of_int (Ftl.Device_intf.logical_capacity device))))
        ~read_fraction:0.05
    in
    let max_writes = 50_000_000 in
    let rng = Sim.Rng.create (seed + 1) in
    let outcome =
      match ctx.Experiments.Ctx.monitor with
      | None ->
          Telemetry.Trace.with_span ~registry "age" (fun () ->
              Workload.Aging.run ~max_writes ~utilization ~rng ~pattern ~device
                ())
      | Some monitor ->
          (* Same workload stream, cut into fixed write slices so the
             monitor can sample the registry between them: one epoch =
             [epoch_writes] accepted host writes. *)
          let sink = Monitor.Engine.sink monitor in
          let epoch_writes = 4096 in
          let alive_g =
            Telemetry.Registry.gauge registry
              ~help:"1 while the device still accepts writes" "device_alive"
          and cap_g =
            Telemetry.Registry.gauge registry
              ~help:"Current logical capacity in oPages"
              "device_capacity_opages"
          in
          let sample epoch =
            Telemetry.Registry.Gauge.set alive_g
              (if Ftl.Device_intf.alive device then 1. else 0.);
            Telemetry.Registry.Gauge.set cap_g
              (float_of_int (Ftl.Device_intf.logical_capacity device));
            Monitor.Engine.sample monitor ~time:(float_of_int epoch) registry
          in
          Telemetry.Trace.with_span ~registry ?sink "age" (fun () ->
              sample 0;
              let total =
                ref
                  {
                    Workload.Aging.host_writes = 0;
                    reads = 0;
                    unmapped_reads = 0;
                    uncorrectable_reads = 0;
                    died = false;
                  }
              in
              let epoch = ref 0 in
              let finished = ref false in
              while not !finished do
                incr epoch;
                let o =
                  Telemetry.Trace.with_span ?sink
                    ~args:[ ("epoch", string_of_int !epoch) ]
                    "age:epoch"
                    (fun () ->
                      Workload.Aging.run_until ~utilization ~rng ~pattern
                        ~device
                        ~stop:(fun writes -> writes >= epoch_writes)
                        ())
                in
                total :=
                  {
                    Workload.Aging.host_writes =
                      !total.Workload.Aging.host_writes
                      + o.Workload.Aging.host_writes;
                    reads = !total.Workload.Aging.reads + o.Workload.Aging.reads;
                    unmapped_reads =
                      !total.Workload.Aging.unmapped_reads
                      + o.Workload.Aging.unmapped_reads;
                    uncorrectable_reads =
                      !total.Workload.Aging.uncorrectable_reads
                      + o.Workload.Aging.uncorrectable_reads;
                    died =
                      !total.Workload.Aging.died || o.Workload.Aging.died;
                  };
                if
                  !total.Workload.Aging.died
                  || o.Workload.Aging.host_writes = 0
                  || !total.Workload.Aging.host_writes >= max_writes
                then finished := true;
                if Monitor.Engine.due monitor ~tick:!epoch || !finished then
                  sample !epoch
              done;
              !total)
    in
    Experiments.Report.section fmt
      (Printf.sprintf "aging %s (seed %d)" (Ftl.Device_intf.label device) seed);
    Experiments.Report.table fmt
      ~header:[ "metric"; "value" ]
      ~rows:
        [
          [ "initial capacity (oPages)";
            string_of_int (Ftl.Device_intf.initial_capacity device) ];
          [ "host writes accepted";
            string_of_int outcome.Workload.Aging.host_writes ];
          [ "reads"; string_of_int outcome.Workload.Aging.reads ];
          [ "unmapped reads";
            string_of_int outcome.Workload.Aging.unmapped_reads ];
          [ "uncorrectable reads";
            string_of_int outcome.Workload.Aging.uncorrectable_reads ];
          [ "died of wear"; string_of_bool outcome.Workload.Aging.died ];
          [ "write amplification";
            Experiments.Report.cell_f
              (Ftl.Device_intf.write_amplification device) ];
        ]
  in
  Cmd.v
    (Cmd.info "age" ~doc:"Age one device to death and report its endurance")
    Term.(
      const run $ tel_opts_term $ jobs_term $ mon_opts_term $ kind $ seed
      $ utilization)

(* --- fleet ------------------------------------------------------------------ *)

let fleet_args =
  let days =
    Arg.(value & opt int 150 & info [ "days" ] ~docv:"DAYS" ~doc:"Scaled days.")
  in
  let years =
    Arg.(
      value
      & opt (some int) None
      & info [ "years" ] ~docv:"YEARS"
          ~doc:
            "Simulate $(docv) years (365 scaled days each); overrides \
             --days.  Multi-year runs usually pair this with --epoch-days \
             to coalesce the day loop.")
  in
  let epoch_days =
    Arg.(
      value & opt int 1
      & info [ "epoch-days" ] ~docv:"D"
          ~doc:
            "Coalesce $(docv) simulated days into one aging epoch: one \
             write quota, one failure draw and one telemetry/monitor \
             sample per epoch.  The default 1 reproduces the per-day loop \
             exactly.")
  in
  let aging =
    Arg.(
      value
      & opt (enum [ ("auto", Workload.Aging.Auto); ("per-op", Workload.Aging.Per_op) ])
          Workload.Aging.Auto
      & info [ "aging" ] ~docv:"PATH"
          ~doc:
            "Aging driver: $(b,auto) uses the bulk-aging fast path (the \
             default; bit-exact with per-op), $(b,per-op) forces one \
             device call per write (the differential oracle).")
  in
  let devices =
    Arg.(
      value
      & opt int Experiments.Defaults.fleet_devices
      & info [ "devices" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let dwpd =
    Arg.(
      value & opt float 1.
      & info [ "dwpd" ] ~docv:"X" ~doc:"Drive writes per day per device.")
  in
  let mode =
    Arg.(
      value
      & opt (some kind_conv) None
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Restrict the run to one device design (baseline, cvss, shrinks \
             or regens); default compares all four.  The single-design form \
             is the one that scales to --devices 100000.")
  in
  (days, years, epoch_days, aging, devices, dwpd, mode)

let fleet_run ~force_report tel jobs mon obs days years epoch_days aging
    devices dwpd mode =
  let obs = if force_report then { obs with fleet_report = true } else obs in
  let total_days =
    match years with Some y -> y * 365 | None -> days
  in
  with_context ~mon ~obs
    ~epoch:(Printf.sprintf "%dd" total_days)
    tel ~jobs
    (fun ctx ->
      Experiments.Fig3ab.run ~days:total_days ~devices ~dwpd ~aging
        ~epoch_days
        ?kinds:(Option.map (fun k -> [ k ]) mode)
        ~ctx fmt)

let fleet_cmd =
  let days, years, epoch_days, aging, devices, dwpd, mode = fleet_args in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Fleet aging: alive devices and capacity over time (Figs. 3a/3b)")
    Term.(
      const (fleet_run ~force_report:false)
      $ tel_opts_term $ jobs_term $ mon_opts_term $ obs_opts_term $ days
      $ years $ epoch_days $ aging $ devices $ dwpd $ mode)

let fleet_report_cmd =
  let days, years, epoch_days, aging, devices, dwpd, mode = fleet_args in
  Cmd.v
    (Cmd.info "fleet-report"
       ~doc:
         "Age a fleet and print its wear-imbalance report (the fleet command \
          with --fleet-report forced on): sketch quantiles, CV/Gini, health \
          grades and the exact top-K worst devices in O(K) memory")
    Term.(
      const (fleet_run ~force_report:true)
      $ tel_opts_term $ jobs_term $ mon_opts_term $ obs_opts_term $ days
      $ years $ epoch_days $ aging $ devices $ dwpd $ mode)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let kind =
    Arg.(
      value
      & opt kind_conv `Regens
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Device design: baseline, cvss, shrinks or regens.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let writes =
    Arg.(
      value & opt int 200_000
      & info [ "writes" ] ~docv:"N"
          ~doc:"Host writes to issue before snapshotting.")
  in
  let run tel kind seed writes =
    (* [stats] exists to print a snapshot, so collection is always on;
       default destination is stdout. *)
    let tel =
      { tel with metrics = Some (Option.value tel.metrics ~default:"-") }
    in
    with_telemetry tel @@ fun registry ->
    Telemetry.Trace.with_span ~registry "stats" @@ fun () ->
    let utilization = 0.85 in
    let device = Experiments.Defaults.make_device ~registry kind ~seed in
    let pattern =
      Workload.Pattern.uniform
        ~window:
          (Stdlib.max 1
             (int_of_float
                (utilization
                *. float_of_int (Ftl.Device_intf.logical_capacity device))))
        ~read_fraction:0.2
    in
    ignore
      (Workload.Aging.run ~max_writes:writes ~utilization
         ~rng:(Sim.Rng.create (seed + 1))
         ~pattern ~device ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Exercise one device briefly and dump its full metric snapshot \
          (counters, gauges, latency histograms)")
    Term.(const run $ tel_opts_term $ kind $ seed $ writes)

(* --- chaos ------------------------------------------------------------------ *)

let chaos_cmd =
  let plan =
    Arg.(
      value & opt string "default"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan: a preset (none, default, media, crashy, killer, \
             sticky, silent, live-recovery) or a comma-separated spec list, \
             e.g. \
             $(b,transient=0.05@0.1,sticky=0.01,silent=0.02,corr@400:3,kill@600:1,crash@800).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let steps =
    Arg.(
      value & opt int 1000
      & info [ "steps" ] ~docv:"N" ~doc:"Workload steps per cell.")
  in
  let run tel jobs mon obs plan seed steps =
    match Faults.Plan.parse plan with
    | Error msg -> `Error (false, msg)
    | Ok plan ->
        let ok =
          with_context ~mon ~obs
            ~epoch:(Printf.sprintf "chaos-%dsteps" steps)
            tel ~jobs
            (fun ctx ->
              Telemetry.Trace.with_span
                ~registry:ctx.Experiments.Ctx.registry "chaos" (fun () ->
                  Experiments.Chaos.run ~ctx ~plan ~seed ~steps fmt))
        in
        if ok then `Ok () else `Error (false, "chaos verdict: FAIL")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a deterministic fault-injection campaign and check the \
          tolerance invariants (byte-identical at any --jobs)")
    Term.(
      ret
        (const run $ tel_opts_term $ jobs_term $ mon_opts_term $ obs_opts_term
        $ plan $ seed $ steps))

(* --- traffic ----------------------------------------------------------------- *)

let traffic_cmd =
  let tenants =
    Arg.(
      value & opt int 64
      & info [ "tenants" ] ~docv:"N" ~doc:"Simulated tenants issuing the mix.")
  in
  let ops =
    Arg.(
      value & opt int 12_000
      & info [ "ops" ] ~docv:"N" ~doc:"Trace length in accesses.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let batch =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"N"
          ~doc:"Ops per submission batch (1 = per-op submission).")
  in
  let qos =
    Arg.(
      value & opt bool true
      & info [ "qos" ] ~docv:"BOOL"
          ~doc:"Per-tenant token-bucket QoS (weighted bandwidth sharing).")
  in
  let plan =
    Arg.(
      value & opt string "media"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan for the chaos cells (media faults only; kills and \
             crashes are filtered out).")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Replay this trace file (salamander-trace v1) instead of \
             generating one; --tenants/--ops/--seed still shape pacing and \
             the tenant population.")
  in
  let emit_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-trace" ] ~docv:"FILE"
          ~doc:"Also write the trace being replayed to $(docv).")
  in
  let latency_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "latency-json" ] ~docv:"FILE"
          ~doc:
            "Write the latency-percentile table as JSON to $(docv) (\"-\" \
             for stdout).")
  in
  let run tel jobs obs tenants ops seed batch qos plan trace_file emit_trace
      latency_json =
    match Faults.Plan.parse plan with
    | Error msg -> `Error (false, msg)
    | Ok plan -> (
        let trace =
          match trace_file with
          | Some path -> Workload.Trace.of_file ~path
          | None -> Ok (Experiments.Traffic_run.make_trace ~tenants ~ops ~seed)
        in
        match trace with
        | Error msg -> `Error (false, msg)
        | Ok trace ->
            Option.iter (fun path -> Workload.Trace.to_file trace ~path)
              emit_trace;
            let rows =
              with_context ~obs
                ~epoch:(Printf.sprintf "traffic-%dops" ops)
                tel ~jobs (fun ctx ->
                  Telemetry.Trace.with_span
                    ~registry:ctx.Experiments.Ctx.registry "traffic"
                    (fun () ->
                      Experiments.Traffic_run.run ~ctx ~tenants ~ops ~seed
                        ~batch ~qos ~plan ~trace fmt))
            in
            Option.iter
              (fun path ->
                Telemetry.Export.write_file ~path
                  (Experiments.Traffic_run.rows_to_json rows ^ "\n"))
              latency_json;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Replay a multi-tenant trace against all device designs and report \
          per-tenant QoS plus p50/p95/p99/p999 latency (byte-identical at \
          any --jobs)")
    Term.(
      ret
        (const run $ tel_opts_term $ jobs_term $ obs_opts_term $ tenants $ ops
        $ seed $ batch $ qos $ plan $ trace_file $ emit_trace $ latency_json))

(* --- monitor ----------------------------------------------------------------- *)

let monitor_cmd =
  let kind =
    Arg.(
      value
      & opt kind_conv `Regens
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Device design: baseline, cvss, shrinks or regens.")
  in
  let devices =
    Arg.(value & opt int 6 & info [ "devices" ] ~docv:"N" ~doc:"Fleet size.")
  in
  let days =
    Arg.(value & opt int 25 & info [ "days" ] ~docv:"DAYS" ~doc:"Scaled days.")
  in
  let dwpd =
    Arg.(
      value & opt float 2.
      & info [ "dwpd" ] ~docv:"X" ~doc:"Drive writes per day per device.")
  in
  let seed =
    Arg.(
      value
      & opt int Experiments.Defaults.fleet_seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run tel jobs mon kind devices days dwpd seed =
    (* This command exists to monitor, so monitoring is always on: default
       to a health report when no monitor flag picked an output. *)
    let mon = if monitor_active mon then mon else { mon with health = true } in
    with_context ~mon tel ~jobs (fun ctx ->
        ignore
          (Experiments.Monitor_run.run ~kind ~devices ~days ~dwpd ~seed ~ctx
             fmt))
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Age a wear-heavy fleet under the longitudinal health monitor and \
          report per-device health, alerts, timelines and traces \
          (byte-identical at any --jobs)")
    Term.(
      const run $ tel_opts_term $ jobs_term $ mon_opts_term $ kind $ devices
      $ days $ dwpd $ seed)

(* --- levels ------------------------------------------------------------------ *)

let levels_cmd =
  let max_level =
    Arg.(
      value & opt int 3
      & info [ "max-level" ] ~docv:"L" ~doc:"Deepest usable tiredness level.")
  in
  let run max_level =
    let profile =
      Salamander.Tiredness.profile ~max_level
        Experiments.Defaults.reference_geometry
    in
    Experiments.Report.section fmt "tiredness level table (16 KiB fPage)";
    for level = 0 to Salamander.Tiredness.dead_level profile do
      Format.fprintf fmt "  %a@." (Salamander.Tiredness.pp_level profile) level
    done
  in
  Cmd.v
    (Cmd.info "levels" ~doc:"Print the tiredness level/code-rate table")
    Term.(const run $ max_level)

(* --- carbon / tco ------------------------------------------------------------- *)

let carbon_cmd =
  let f_op =
    Arg.(
      value
      & opt float Sustain.Params.f_op_ssd_servers
      & info [ "f-op" ] ~docv:"F" ~doc:"Operational fraction of emissions.")
  in
  let lifetime =
    Arg.(
      value & opt float 1.5
      & info [ "lifetime-factor" ] ~docv:"X"
          ~doc:"Lifetime extension factor of the evaluated design.")
  in
  let run f_op lifetime =
    let scenario =
      {
        Sustain.Carbon.label = Printf.sprintf "lifetime %.2fx" lifetime;
        f_op;
        power_effectiveness = Sustain.Params.power_effectiveness;
        upgrade_rate =
          Sustain.Carbon.adjusted_upgrade_rate ~lifetime_factor:lifetime
            ~adjustment:Sustain.Params.capacity_adjustment;
      }
    in
    Experiments.Report.section fmt "carbon model (Eq. 3)";
    Experiments.Report.table fmt
      ~header:[ "configuration"; "f_op"; "Ru"; "CO2e vs baseline"; "savings" ]
      ~rows:
        [
          [
            scenario.Sustain.Carbon.label;
            Experiments.Report.cell_f f_op;
            Experiments.Report.cell_f scenario.Sustain.Carbon.upgrade_rate;
            Experiments.Report.cell_f
              (Sustain.Carbon.relative_footprint scenario);
            Experiments.Report.cell_pct (Sustain.Carbon.savings scenario);
          ];
        ]
  in
  Cmd.v
    (Cmd.info "carbon" ~doc:"Evaluate Eq. 3 with custom parameters")
    Term.(const run $ f_op $ lifetime)

let tco_cmd =
  let f_opex =
    Arg.(
      value
      & opt float Sustain.Params.f_opex
      & info [ "f-opex" ] ~docv:"F" ~doc:"Operational fraction of TCO.")
  in
  let run f_opex =
    Experiments.Report.section fmt "TCO model (Eq. 4)";
    Experiments.Report.table fmt
      ~header:[ "design"; "TCO vs baseline"; "savings" ]
      ~rows:
        (List.map
           (fun s ->
             [
               s.Sustain.Tco.label;
               Experiments.Report.cell_f (Sustain.Tco.relative_tco s);
               Experiments.Report.cell_pct (Sustain.Tco.savings s);
             ])
           (Sustain.Tco.sensitivity ~f_opex))
  in
  Cmd.v
    (Cmd.info "tco" ~doc:"Evaluate Eq. 4 with custom parameters")
    Term.(const run $ f_opex)

(* --- main ---------------------------------------------------------------------- *)

let () =
  let doc =
    "Salamander: SSDs that shrink and regenerate for longer flash lifespan"
  in
  let info = Cmd.info "salamander" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ experiments_cmd; age_cmd; fleet_cmd; fleet_report_cmd; monitor_cmd;
            stats_cmd; chaos_cmd; traffic_cmd; levels_cmd; carbon_cmd; tco_cmd ]))
